"""The denotational mapping ``[[·]]^η_J`` into event structures.

Implements Figs. 19 and 20 plus the supporting machinery of sec. 8:

* the ``η`` environment giving semantics to control-flow statements
  (``sub``, ``return``, ``break``, ``next``, ``reconsider``);
* the ``case`` decomposition ``case(i)`` with ``N``-style arm removal;
* formula denotation via DNF: each clause becomes a ``Synch``-prefixed
  parallel group of ``Rd`` events, clauses mutually conflicting;
* ``wait`` placeholders (``Wait_J``) expanded by a post-processing pass
  that stages "first satisfy ``F``, then read ``n⃗``" and duplicates the
  downstream structure per DNF alternative (the diagrams at the end of
  sec. 8.5);
* bounded unfolding for the infinitary parts (``retry`` re-denotes the
  junction, ``reconsider`` re-denotes the containing case); beyond the
  budget an ``AdHoc`` bound marker event is produced, matching the
  paper's remark that the implementation only needs a weaker, curtailed
  semantics.

Assert/retract denote *two* write events (sender and target tables) per
the formal rule; the paper's figures sometimes merge them into a single
``Wr_{J,γ}`` — rendering merges them back for display.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core import ast as A
from ..core.errors import CSawError
from ..core.formula import FalseF, Formula, Not, to_dnf
from .events import (
    AdHoc,
    Event,
    Rd,
    Sched,
    StartL,
    StopL,
    Synch,
    Unsched,
    WaitL,
    Wr,
    fresh_event,
    STAR,
    TT,
    FF,
)
from .structure import EventStructure

ES = EventStructure


@dataclass(frozen=True)
class _Terminator(A.Expr):
    """Internal marker so case terminators flow through ``η``."""

    kind: str


def _terminator_expr(term: str) -> A.Expr:
    if term in ("break", "next", "reconsider"):
        return _Terminator(term)
    raise CSawError(f"unknown terminator {term!r}")


@dataclass
class Denoter:
    """Denotes junction bodies for junction ``j`` (an instance::junction
    or type::junction name — the semantics only needs a label)."""

    junction: str
    max_unfold: int = 1

    def __post_init__(self):
        self._unfold_budget: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Formulas
    # ------------------------------------------------------------------

    def denote_formula(self, f: Formula) -> ES:
        """DNF decomposition: per clause a Synch-prefixed parallel group
        of Rd events; clauses are strict alternatives (mutual conflict
        between their Synch roots).

        Junction-scoped (``@``) and liveness (``live``) sub-formulas are
        treated as opaque literals — their read events carry the whole
        sub-formula as the key."""
        dnf = to_dnf(_atomize(f))
        if not dnf:  # false: no way to proceed
            return ES.of_events([fresh_event(AdHoc("false", self.junction))])
        groups: list[ES] = []
        synchs: list[Event] = []
        for clause in sorted(dnf, key=lambda c: sorted(c)):
            sy = fresh_event(Synch(self.junction, tuple(sorted(k for k, _ in clause))))
            synchs.append(sy)
            rds = [fresh_event(Rd(self.junction, key, TT if pol else FF)) for key, pol in sorted(clause)]
            le = frozenset((sy.id, r.id) for r in rds)
            groups.append(ES(frozenset([sy, *rds]), le, frozenset()))
        out = ES.empty()
        for g in groups:
            out = out.union(g)
        conf = set(out.conflict)
        for i in range(len(synchs)):
            for j in range(i + 1, len(synchs)):
                conf.add(frozenset((synchs[i].id, synchs[j].id)))
        return ES(out.events, out.le, frozenset(conf))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def denote(self, e: A.Expr, eta: Mapping[str, object] | None = None) -> ES:
        """``[[e]]^η`` for junction ``self.junction``."""
        eta = dict(eta or {})
        for k in ("sub", "return", "break", "next", "reconsider", "retry_body"):
            eta.setdefault(k, A.Skip())
        return self._den(e, eta)

    def _den(self, e: A.Expr, eta: dict) -> ES:
        J = self.junction

        if isinstance(e, _Terminator):
            return self._control(eta, e.kind)
        if isinstance(e, A.Skip) or isinstance(e, A.Restore):
            return ES.empty()
        if isinstance(e, A.Keep):
            return ES.of_events([fresh_event(AdHoc(f"keep({','.join(e.keys)})", J))])
        if isinstance(e, A.HostBlock):
            if not e.writes:
                # the formal rule gives ∅ for ⌊H⌉ without writes, but the
                # paper's figures render abstracted behaviour (complain,
                # H2, ...) as ad hoc labels (sec. 8.2) — keep it visible
                return ES.of_events([fresh_event(AdHoc(e.name, J))])
            evs = [fresh_event(Wr(frozenset([J]), v, STAR)) for v in e.writes]
            return ES.of_events(evs)
        if isinstance(e, A.Save):
            return ES.of_events([fresh_event(Wr(frozenset([J]), e.name, STAR))])
        if isinstance(e, A.Write):
            return ES.of_events([fresh_event(Wr(frozenset([_target_name(e.target)]), e.name, STAR))])
        if isinstance(e, A.Assert) or isinstance(e, A.Retract):
            val = TT if isinstance(e, A.Assert) else FF
            key = e.key()
            if isinstance(e.target, A.SelfTarget):
                return ES.of_events([fresh_event(Wr(frozenset([J]), key, val))])
            return ES.of_events(
                [
                    fresh_event(Wr(frozenset([J]), key, val)),
                    fresh_event(Wr(frozenset([_target_name(e.target)]), key, val)),
                ]
            )
        if isinstance(e, A.Wait):
            return ES.of_events([fresh_event(WaitL(J, tuple(e.keys), str(e.formula)))])
        if isinstance(e, A.Verify):
            return ES.of_events([fresh_event(AdHoc(f"verify({e.formula})", J))])
        if isinstance(e, A.Start):
            return ES.of_events([fresh_event(StartL(J, str(e.instance)))])
        if isinstance(e, A.Stop):
            return ES.of_events([fresh_event(StopL(J, str(e.instance)))])
        if isinstance(e, A.Return):
            return self._control(eta, "return")
        if isinstance(e, A.Retry):
            return self._retry(eta)
        if isinstance(e, A.FateBlock):
            inner = dict(eta)
            inner["return"] = eta["sub"]
            return self._den(e.body, inner)
        if isinstance(e, A.Transaction):
            body = self._den(e.body, {**eta, "return": eta["sub"]}).isolate()
            sy = fresh_event(Synch(J))
            le = frozenset((sy.id, le_.id) for le_ in body.leftmost())
            return ES(body.events | {sy}, body.le | le, body.conflict)
        if isinstance(e, A.Seq):
            return self._seq(list(e.items), eta)
        if isinstance(e, A.Par):
            out = ES.empty()
            for item in e.items:
                out = out.union(self._den(item, eta))
            return out
        if isinstance(e, A.RepPar):
            items = list(e.items)
            out = self._den(items[0], eta)
            for item in items[1:]:
                out = self._reppar(out, self._den(item, eta))
            return out
        if isinstance(e, A.Otherwise):
            return self._otherwise(e, eta)
        if isinstance(e, A.Case):
            return self._case(e, eta)
        if isinstance(e, A.Call):
            return ES.of_events([fresh_event(AdHoc(e.func, J))])
        if isinstance(e, (A.If, A.For)):
            raise CSawError(
                f"denotation requires an expanded expression (found {type(e).__name__})"
            )
        raise CSawError(f"no denotation for {type(e).__name__}")

    # -- sequencing ---------------------------------------------------------

    def _seq(self, items: list[A.Expr], eta: dict) -> ES:
        if not items:
            return ES.empty()
        if len(items) == 1:
            return self._den(items[0], eta)
        head, tail = items[0], items[1:]
        tail_expr = A.seq(*tail)
        head_es = self._den(head, {**eta, "sub": tail_expr})
        tail_es = self._seq(tail, eta)
        return head_es.then(tail_es)

    # -- control ------------------------------------------------------------

    def _control(self, eta: dict, key: str) -> ES:
        target = eta.get(key, A.Skip())
        if isinstance(target, A.Skip):
            return ES.empty()
        budget_key = f"{key}:{id(target)}"
        if self._unfold_budget.get(budget_key, 0) >= self.max_unfold:
            return ES.of_events([fresh_event(AdHoc(f"{key}-bound", self.junction))])
        self._unfold_budget[budget_key] = self._unfold_budget.get(budget_key, 0) + 1
        try:
            # control-flow statements restart their target with sub := skip
            return self._den(target, {**eta, "sub": A.Skip()})
        finally:
            self._unfold_budget[budget_key] -= 1

    def _retry(self, eta: dict) -> ES:
        body = eta.get("retry_body", A.Skip())
        if isinstance(body, A.Skip):
            return ES.of_events([fresh_event(AdHoc("retry", self.junction))])
        key = "retry"
        if self._unfold_budget.get(key, 0) >= self.max_unfold:
            return ES.of_events([fresh_event(AdHoc("retry-bound", self.junction))])
        self._unfold_budget[key] = self._unfold_budget.get(key, 0) + 1
        try:
            return self._den(body, {**eta, "sub": A.Skip()})
        finally:
            self._unfold_budget[key] -= 1

    # -- replicated parallel (Fig. 20) -----------------------------------------

    @staticmethod
    def _reppar(e1: ES, e2: ES) -> ES:
        c1, m1 = e1.copy_fresh()
        c2, m2 = e2.copy_fresh()
        events = e1.events | e2.events | c1.events | c2.events
        le = set(e1.le | e2.le | c1.le | c2.le)
        right1 = {ev.id for ev in e1.rightmost()}
        right2 = {ev.id for ev in e2.rightmost()}
        # after E1 completes, the copy of E2 may run (and dually)
        for r in right1:
            for ev in e2.events:
                le.add((r, m2[ev.id]))
        for r in right2:
            for ev in e1.events:
                le.add((r, m1[ev.id]))
        # interior events enable their own copies
        for ev in e1.events:
            if ev.id not in right1:
                le.add((ev.id, m1[ev.id]))
        for ev in e2.events:
            if ev.id not in right2:
                le.add((ev.id, m2[ev.id]))
        conflict = set(e1.conflict | e2.conflict | c1.conflict | c2.conflict)
        clo1 = e1.closure_le()
        clo2 = e2.closure_le()
        for a, b in clo1:
            conflict.add(frozenset((b, m1[a])))
        for a, b in clo2:
            conflict.add(frozenset((b, m2[a])))
        conflict = {p for p in conflict if len(p) == 2}
        return ES(events, frozenset(le), frozenset(conflict))

    # -- otherwise (Fig. 20) ------------------------------------------------------

    def _otherwise(self, e: A.Otherwise, eta: dict) -> ES:
        body = self._den(e.body, eta)
        handler = self._den(e.handler, eta)
        events = set(body.isolate().events)
        le = set(body.le)
        conflict = set(body.conflict)
        body_clo = body.closure_le()
        preds: dict[int, set[int]] = {}
        for a, b in body_clo:
            preds.setdefault(b, set()).add(a)
        for ev in body.events:
            copy, _m = handler.copy_fresh()
            events |= copy.events
            le |= set(copy.le)
            conflict |= set(copy.conflict)
            left = {c.id for c in copy.leftmost()}
            for p in preds.get(ev.id, ()):  # e' ⪇ e enable the copy
                for l in left:
                    le.add((p, l))
            for l in left:  # the copy conflicts with e itself
                conflict.add(frozenset((ev.id, l)))
        return ES(frozenset(events), frozenset(le), frozenset(conflict))

    # -- case ----------------------------------------------------------------------

    def _case(self, e: A.Case, eta: dict) -> ES:
        return self._case_from(e, 0, eta)

    def _case_from(self, e: A.Case, i: int, eta: dict) -> ES:
        arms = e.arms
        if i >= len(arms):
            return self._den(e.otherwise, eta)
        arm = arms[i]
        # the paper's E'_i: the case with arms i+1..n (for ``next``)
        rest_case = A.Case(arms[i + 1 :], e.otherwise) if i + 1 < len(arms) else A.Case((), e.otherwise)
        eta_i = dict(eta)
        eta_i["break"] = eta["sub"]
        eta_i["reconsider"] = e
        eta_i["next"] = rest_case if rest_case.arms else e.otherwise

        guard_t = self.denote_formula(arm.formula)
        guard_f = self.denote_formula(Not(arm.formula))
        body = self._den(A.seq(arm.body, _terminator_expr(arm.terminator)), eta_i)
        rest = self._case_from(e, i + 1, eta)

        taken = guard_t.then(body)
        not_taken = guard_f.then(rest)
        out = taken.union(not_taken)
        conflict = set(out.conflict)
        for a in guard_t.leftmost():
            for b in guard_f.leftmost():
                conflict.add(frozenset((a.id, b.id)))
        return ES(out.events, out.le, frozenset({p for p in conflict if len(p) == 2}))

    # ------------------------------------------------------------------
    # Junction / wait post-processing
    # ------------------------------------------------------------------

    def denote_junction(
        self, body: A.Expr, guard: Formula | None = None, *, expand: bool = True
    ) -> ES:
        """``Sched_J → [[body]] → Unsched_J`` with optional guard reads
        enabling the Sched event (cf. Fig. 18's ``Rd_g(Work,tt) →
        Sched_g``), wait placeholders expanded.

        ``expand=False`` leaves ``Wait_J`` placeholders in place.  The
        unexpanded structure is linear in the body size (expansion
        duplicates the downstream structure once per DNF alternative,
        which is exponential in the number of waits) and preserves the
        enablement order of the body's own events — what the static
        analyzer's concurrency pass needs."""
        eta = {
            "sub": A.Skip(),
            "return": A.Skip(),
            "break": A.Skip(),
            "next": A.Skip(),
            "reconsider": A.Skip(),
            "retry_body": body,
        }
        core = self._den(body, eta)
        sched = fresh_event(Sched(self.junction))
        unsched = fresh_event(Unsched(self.junction))
        sched_es = ES.of_events([sched])
        if guard is not None:
            sched_es = self.denote_formula(guard).then(sched_es)
        out = sched_es.then(core).then(ES.of_events([unsched]))
        if not expand:
            return out
        return expand_waits(out, self.junction)


# ---------------------------------------------------------------------------
# Wait expansion (sec. 8.5 post-processing)
# ---------------------------------------------------------------------------

def expand_waits(es: ES, junction: str, budget: int = 32) -> ES:
    """Replace each ``Wait_J(n⃗, F)`` placeholder with the staged
    pattern: DNF alternatives of ``F`` (mutually conflicting), each
    followed by its own copy of the data reads and of the entire
    downstream structure."""
    from ..core.parser import parse_formula

    for _ in range(budget):
        waits = [e for e in es.events if isinstance(e.label, WaitL)]
        if not waits:
            return es
        es = _expand_one(es, waits[0], junction, parse_formula)
    raise CSawError("wait expansion did not terminate within budget")


def _expand_one(es: ES, w: Event, junction: str, parse_formula) -> ES:
    label: WaitL = w.label  # type: ignore[assignment]
    try:
        formula = parse_formula(label.formula)
    except Exception:
        formula = FalseF()  # unparseable (shouldn't happen from our own AST)
    dnf = to_dnf(formula)
    clo = es.closure_le()
    direct_preds = {a for (a, b) in es.le if b == w.id}
    downstream_ids = {b for (a, b) in clo if a == w.id}
    downstream = frozenset(e for e in es.events if e.id in downstream_ids)
    remaining_events = frozenset(
        e for e in es.events if e.id != w.id and e.id not in downstream_ids
    )
    remaining_ids = {e.id for e in remaining_events}
    kept_le = frozenset(
        (a, b) for (a, b) in es.le if a in remaining_ids and b in remaining_ids
    )
    kept_conf = frozenset(p for p in es.conflict if p <= remaining_ids)

    down_le = frozenset((a, b) for (a, b) in es.le if a in downstream_ids and b in downstream_ids)
    down_conf = frozenset(p for p in es.conflict if p <= downstream_ids)
    down_es = ES(downstream, down_le, down_conf)
    # events the wait directly enabled
    direct_succs = {b for (a, b) in es.le if a == w.id}
    # external enablements into the downstream region (other than via w)
    ext_in = [
        (a, b)
        for (a, b) in es.le
        if a in remaining_ids and b in downstream_ids
    ]
    ext_conf = [p for p in es.conflict if len(p & remaining_ids) == 1 and len(p & downstream_ids) == 1]

    events = set(remaining_events)
    le = set(kept_le)
    conflict = set(kept_conf)

    clauses = sorted(dnf, key=lambda c: sorted(c)) or [frozenset()]
    synchs: list[Event] = []
    for clause in clauses:
        sy = fresh_event(Synch(junction, tuple(sorted(k for k, _ in clause))))
        synchs.append(sy)
        rds = [fresh_event(Rd(junction, key, TT if pol else FF)) for key, pol in sorted(clause)]
        data_rds = [fresh_event(Rd(junction, k, STAR)) for k in label.keys]
        events.add(sy)
        events.update(rds)
        events.update(data_rds)
        for p in direct_preds:
            le.add((p, sy.id))
        for r in rds:
            le.add((sy.id, r.id))
        stage_from = rds if rds else [sy]
        for s in stage_from:
            for d in data_rds:
                le.add((s.id, d.id))
        tail = data_rds if data_rds else stage_from
        # fresh copy of the downstream structure for this alternative
        copy, m = down_es.copy_fresh()
        events.update(copy.events)
        le.update(copy.le)
        conflict.update(copy.conflict)
        for s in direct_succs:
            if s in m:
                for t in tail:
                    le.add((t.id, m[s]))
        for a, b in ext_in:
            le.add((a, m[b]))
        for p in ext_conf:
            (outside,) = tuple(p & remaining_ids)
            (inside,) = tuple(p & downstream_ids)
            if inside in m:
                conflict.add(frozenset((outside, m[inside])))
    for i in range(len(synchs)):
        for j in range(i + 1, len(synchs)):
            conflict.add(frozenset((synchs[i].id, synchs[j].id)))
    return ES(frozenset(events), frozenset(le), frozenset({p for p in conflict if len(p) == 2}))


def _target_name(target: object) -> str:
    if isinstance(target, A.SelfTarget):
        return "self"
    return str(target)


def _atomize(f: Formula) -> Formula:
    """Replace At/Live sub-formulas with opaque pseudo-propositions so
    the DNF machinery can decompose guards that observe other junctions
    (e.g. ``me::instance::serve@!Active``)."""
    from ..core.formula import And, At, Implies, Live, Not, Or, Prop

    if isinstance(f, (At, Live)):
        return Prop(str(f))
    if isinstance(f, Not):
        return Not(_atomize(f.operand))
    if isinstance(f, And):
        return And(_atomize(f.left), _atomize(f.right))
    if isinstance(f, Or):
        return Or(_atomize(f.left), _atomize(f.right))
    if isinstance(f, Implies):
        return Implies(_atomize(f.left), _atomize(f.right))
    return f
