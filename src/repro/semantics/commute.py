"""The independence (commutation) relation induced by the semantics.

Section 8's event-structure semantics orders events by causality and
conflict; two events with neither relation are *concurrent*, and the
paper's reading of concurrency is exactly commutation: executing them
in either order reaches the same state.  Operationally, two activities
commute when the state they touch is disjoint — KV keys live in
per-junction tables, so the unit of interference is the pair
``(junction node, key)``, plus whole-node interference for activities
(scheduling, strand wake-ups) whose effect on a junction is not
key-local.

This module exports that relation in a form both the static analyzer
and the schedule-exploration harness (:mod:`repro.explore`) consume:

* :class:`Footprint` — read/write sets over resource tokens
  (``"node"`` for whole-junction effects, ``"node#key"`` for one key);
* :func:`conflicts` / :func:`commutes` — the interference test, with
  missing footprints treated conservatively as interfering;
* :func:`footprint_of` — footprints of the formal semantic labels
  (:class:`~repro.semantics.events.Wr`, ``Rd``, ``Sched``, …), so the
  runtime relation provably refines the event-structure one.

Resource tokens are deliberately keyed by *name* even though each
table stores its values in slot-addressed storage
(:mod:`repro.runtime.kvtable`): slots are junction-local — the same
key can occupy different slots in different junctions, or in the same
junction across a live reconfiguration that rebinds its declarations —
so a slot index is meaningless as a cross-junction resource id.  Names
are the stable vocabulary everywhere state crosses a junction
boundary; the slot layout is a per-table representation detail,
translated at that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import (
    AdHoc,
    Label,
    Rd,
    Sched,
    StartL,
    StopL,
    Synch,
    Unsched,
    WaitL,
    Wr,
)


def node_token(node: str) -> str:
    """A token interfering with *everything* at junction ``node``."""
    return node


def key_token(node: str, key: str) -> str:
    """A token interfering only with ``key`` in ``node``'s table (and
    with the whole-node token)."""
    return f"{node}#{key}"


@dataclass(frozen=True)
class Footprint:
    """Read/write sets of one schedulable activity.

    Tokens are :func:`node_token` / :func:`key_token` strings.  An
    empty footprint commutes with everything; ``None`` (no footprint
    recorded) is treated by :func:`commutes` as interfering with
    everything — unknown effects must not be reordered away.
    """

    reads: frozenset = frozenset()
    writes: frozenset = frozenset()

    @staticmethod
    def make(reads=(), writes=()) -> "Footprint":
        return Footprint(frozenset(reads), frozenset(writes))

    def __or__(self, other: "Footprint") -> "Footprint":
        return Footprint(self.reads | other.reads, self.writes | other.writes)


def _token_conflict(a: str, b: str) -> bool:
    na, _, ka = a.partition("#")
    nb, _, kb = b.partition("#")
    if na != nb:
        return False
    # whole-node tokens (no key part) interfere with any token of the
    # node; key tokens interfere only with the same key
    return not ka or not kb or ka == kb


def _sets_conflict(xs: frozenset, ys: frozenset) -> bool:
    # token sets are small (1-3 entries); the quadratic scan beats
    # building an index
    for x in xs:
        for y in ys:
            if _token_conflict(x, y):
                return True
    return False


def conflicts(a: Footprint, b: Footprint) -> bool:
    """Write/write, write/read or read/write overlap between ``a`` and
    ``b`` — the classic interference condition."""
    return (
        _sets_conflict(a.writes, b.writes)
        or _sets_conflict(a.writes, b.reads)
        or _sets_conflict(a.reads, b.writes)
    )


def commutes(a: Footprint | None, b: Footprint | None) -> bool:
    """True iff the two activities provably reach the same state in
    either order.  Unknown footprints never commute."""
    if a is None or b is None:
        return False
    return not conflicts(a, b)


def footprint_of(label: Label) -> Footprint | None:
    """Footprint of a formal event-structure label (sec. 8.2 alphabet).

    ``Wr`` writes its key in every listed table; ``Rd``/``Wait`` read;
    scheduling, lifecycle and ad-hoc labels touch the whole junction
    (their effect is not key-local).  Returns ``None`` for label kinds
    with no defined footprint.
    """
    if isinstance(label, Wr):
        return Footprint.make(writes=[key_token(j, label.key) for j in label.junctions])
    if isinstance(label, Rd):
        return Footprint.make(reads=[key_token(label.junction, label.key)])
    if isinstance(label, WaitL):
        return Footprint.make(reads=[key_token(label.junction, k) for k in label.keys])
    if isinstance(label, Synch):
        return Footprint.make(reads=[key_token(label.junction, k) for k in label.keys])
    if isinstance(label, (Sched, Unsched)):
        return Footprint.make(writes=[node_token(label.junction)])
    if isinstance(label, (StartL, StopL)):
        return Footprint.make(writes=[node_token(label.instance)])
    if isinstance(label, AdHoc):
        if label.junction:
            return Footprint.make(writes=[node_token(label.junction)])
        return None
    return None
