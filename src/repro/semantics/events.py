"""Events and labels of the C-Saw event-structure semantics (sec. 8).

An event is a triple ``(id, label, outward)``: a unique identifier, a
label describing the activity, and an "outward" flag used by the
exception-handling composition rules (``isolate`` clears it).

The label alphabet (sec. 8.2)::

    L ∈ { Rd_J(K,V), Wr_J(K,V), Start_J(γ), Stop_J(γ),
          Sched_J, Unsched_J, Synch_J(K⃗), Wait_J(K⃗,K) }

plus *ad hoc* labels for abstracted behaviour such as ``complain``.
``Wr`` labels may carry a set of junctions (the paper writes
``Wr_{Act,Aud}(Work,tt)`` for an assert that updates both tables).

Values: ``TT``/``FF`` for propositions, ``STAR`` ("*") for data writes
of unspecified value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet


class _Star:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


#: The unspecified data value "*"
STAR = _Star()
TT = True
FF = False


def _fmt_val(v) -> str:
    if v is True:
        return "tt"
    if v is False:
        return "ff"
    return repr(v) if v is not STAR else "*"


class Label:
    """Base class of event labels; labels are value objects."""

    __slots__ = ()


def _junctions_str(junctions: FrozenSet[str]) -> str:
    if len(junctions) == 1:
        return next(iter(junctions))
    return "{" + ",".join(sorted(junctions)) + "}"


@dataclass(frozen=True)
class Rd(Label):
    """``Rd_J(K, V)``: key ``key`` read as ``value`` at junction ``junction``."""

    junction: str
    key: str
    value: object

    def __str__(self) -> str:
        return f"Rd_{self.junction}({self.key},{_fmt_val(self.value)})"


@dataclass(frozen=True)
class Wr(Label):
    """``Wr_J(K, V)``; ``junctions`` may name several tables updated by
    one statement (assert/retract update sender and target)."""

    junctions: FrozenSet[str]
    key: str
    value: object

    def __str__(self) -> str:
        return f"Wr_{_junctions_str(self.junctions)}({self.key},{_fmt_val(self.value)})"


@dataclass(frozen=True)
class StartL(Label):
    junction: str
    instance: str

    def __str__(self) -> str:
        return f"Start_{self.junction}({self.instance})"


@dataclass(frozen=True)
class StopL(Label):
    junction: str
    instance: str

    def __str__(self) -> str:
        return f"Stop_{self.junction}({self.instance})"


@dataclass(frozen=True)
class Sched(Label):
    junction: str

    def __str__(self) -> str:
        return f"Sched_{self.junction}"


@dataclass(frozen=True)
class Unsched(Label):
    junction: str

    def __str__(self) -> str:
        return f"Unsched_{self.junction}"


@dataclass(frozen=True)
class Synch(Label):
    """``Synch_J(K⃗)``: a synchronization barrier inserted by the
    semantics (e.g. transaction entry, DNF read staging)."""

    junction: str
    keys: tuple[str, ...] = ()

    def __str__(self) -> str:
        k = ",".join(self.keys)
        return f"Synch_{self.junction}({k})"


@dataclass(frozen=True)
class WaitL(Label):
    """``Wait_J(K⃗, F)``: placeholder decomposed into read patterns by
    the post-processing step (sec. 8.5)."""

    junction: str
    keys: tuple[str, ...]
    formula: str

    def __str__(self) -> str:
        return f"Wait_{self.junction}([{','.join(self.keys)}],{self.formula})"


@dataclass(frozen=True)
class AdHoc(Label):
    """Abstracted behaviour, e.g. ``complain`` (sec. 8.2)."""

    name: str
    junction: str = ""

    def __str__(self) -> str:
        return self.name if not self.junction else f"{self.name}@{self.junction}"


_ids = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """An event ``(id, label, outward)``."""

    id: int
    label: Label
    outward: bool = True

    def __str__(self) -> str:
        suffix = "" if self.outward else "°"
        return f"{self.label}{suffix}"


def fresh_event(label: Label, outward: bool = True) -> Event:
    """Create an event with a fresh identifier."""
    return Event(next(_ids), label, outward)


def isolate_event(e: Event) -> Event:
    """The paper's ``isolate``: clear the outward flag (identity kept)."""
    return Event(e.id, e.label, False)
