"""Formal event-structure semantics of the C-Saw DSL (paper sec. 8)."""

from .commute import Footprint, commutes, conflicts, footprint_of, key_token, node_token
from .denote import Denoter, expand_waits
from .events import (
    AdHoc,
    Event,
    FF,
    Label,
    Rd,
    STAR,
    Sched,
    StartL,
    StopL,
    Synch,
    TT,
    Unsched,
    WaitL,
    Wr,
    fresh_event,
    isolate_event,
)
from .program_sem import (
    ProgramSemantics,
    denote_junction,
    denote_program,
    denote_startup,
)
from .render import immediate_causality, minimal_conflicts, to_dot, to_text
from .structure import EventStructure

__all__ = [
    "AdHoc",
    "Denoter",
    "Event",
    "EventStructure",
    "FF",
    "Footprint",
    "Label",
    "ProgramSemantics",
    "Rd",
    "STAR",
    "Sched",
    "StartL",
    "StopL",
    "Synch",
    "TT",
    "Unsched",
    "WaitL",
    "Wr",
    "commutes",
    "conflicts",
    "denote_junction",
    "denote_program",
    "denote_startup",
    "expand_waits",
    "footprint_of",
    "fresh_event",
    "immediate_causality",
    "isolate_event",
    "key_token",
    "minimal_conflicts",
    "node_token",
    "to_dot",
    "to_text",
]
