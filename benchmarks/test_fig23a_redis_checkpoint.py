"""Fig. 23a: response of the Redis query rate to checkpoints.

Paper setup: redis-benchmark default workload, checkpoints at 15 s
intervals, one simulated crash (vertical line at ~60 s) with recovery
from the last snapshot; 120 s timeline, y-axis ~8.8–9.8 KQuery/s with
shallow dips at each checkpoint and a deeper dip at the crash.
"""

from conftest import print_series, run_once

from repro.arch.checkpointing import CheckpointedService
from repro.redislite import BenchDriver, DirectPort, RedisServer, WorkloadGenerator
from repro.runtime.sim import Simulator

DURATION = 120.0
CHECKPOINT_EVERY = 15.0
CRASH_AT = 60.0
RECOVERY_DELAY = 1.0


def run_experiment():
    sim = Simulator()
    server = RedisServer()
    ref = {}
    svc = CheckpointedService(server, stall=lambda d: ref["p"].stall(d), sim=sim)
    port = ref["p"] = DirectPort(sim, server)
    wl = WorkloadGenerator(n_keys=2000, get_ratio=0.7, seed=101)
    for cmd in wl.preload_commands():
        server.execute(cmd)
    svc.schedule_checkpoints(CHECKPOINT_EVERY, DURATION)
    sim.call_at(CRASH_AT, lambda: (svc.crash(), port.stall(RECOVERY_DELAY)))
    sim.call_at(CRASH_AT + RECOVERY_DELAY, svc.recover)
    res = BenchDriver(sim, port, wl, clients=8).run(DURATION)
    return svc, res


def test_fig23a(benchmark):
    svc, res = run_once(benchmark, run_experiment)
    series = res.qps_series(1.0)
    print_series("Fig 23a — Redis query rate vs checkpoints (KQuery/s)",
                 [(t, q / 1000) for t, q in series], "KQ/s", every=5)
    print(f"  checkpoints={svc.checkpoints} stored={svc.aud.snapshots_stored} "
          f"restores={svc.restores}  total completions={res.count}")

    s = dict(series)
    steady = s[5.0]
    # dips at every checkpoint instant
    for tc in (15.0, 30.0, 45.0, 75.0, 90.0, 105.0):
        assert s[tc] < steady * 0.99, f"expected a dip at t={tc}"
    # the crash dip is the deepest
    assert s[CRASH_AT] < min(s[15.0], s[30.0], s[45.0])
    # full recovery between events
    assert s[50.0] > steady * 0.98
    assert s[80.0] > steady * 0.98
    # the snapshot actually protected the data
    assert svc.restores == 1
    assert svc.aud.snapshots_stored >= 3
