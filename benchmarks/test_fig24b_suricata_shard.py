"""Fig. 24b: cumulative packets sharded by 5-tuple (4 Suricata shards).

Paper setup: each packet's 5-tuple (src/dst IP and port, protocol) is
hashed to pick one of four back-end Suricata instances; on the
bigFlows-like trace the per-shard cumulative curves diverge because
flows are unequal ("the workload is distributed in ratios across the
four instances"), reaching MPackets over 120 s.

Scaled here: 5 KPackets/s for 120 s through the DSL sharding
architecture (batched steering, per-5-tuple decisions).
"""

from conftest import print_table, run_once

from repro.arch.sharding import ShardedSuricata
from repro.suricatalite import TraceGenerator

DURATION = 120.0
RATE = 5_000.0


def run_experiment():
    svc = ShardedSuricata(n_shards=4, batch_size=200)
    gen = TraceGenerator(
        n_flows=150, packets_per_second=RATE, duration=DURATION, seed=105
    )
    for pkt in gen.packets():
        svc.sim.call_at(pkt.ts, lambda p=pkt: svc.feed(p))
    svc.sim.call_at(DURATION + 0.5, svc.flush_all)
    svc.system.run_until(DURATION + 20.0)
    return svc


def test_fig24b(benchmark):
    svc = run_once(benchmark, run_experiment)
    # cumulative series per shard over 20s buckets
    buckets = {s: {} for s in range(4)}
    for t, s, n in svc.packets_done:
        b = int(t / 20.0)
        buckets[s][b] = buckets[s].get(b, 0) + n
    top = max(b for shard in buckets.values() for b in shard) if svc.packets_done else 0
    rows = []
    cumulative = [0, 0, 0, 0]
    for b in range(top + 1):
        for s in range(4):
            cumulative[s] += buckets[s].get(b, 0)
        rows.append([f"{(b + 1) * 20:5d}s"] + [f"{c/1000:.1f}K" for c in cumulative])
    print_table("Fig 24b — cumulative packets per Suricata shard",
                ["time", "shard1", "shard2", "shard3", "shard4"], rows)

    total = sum(cumulative)
    print(f"  total processed: {total}; failures={len(svc.system.failures)}")
    assert total >= RATE * DURATION * 0.99
    # the 5-tuple hash spreads flows unevenly: visible step ratios
    assert max(cumulative) > 1.4 * min(cumulative)
    # every shard did real detection work
    for i in range(4):
        assert svc.backend_app(i).payload.packets_processed > 0
    assert svc.system.failures == []
