"""KV-table micro-op benchmark: the junction-state write path in isolation.

The junction compiler's storm benchmark (``test_compile_throughput``)
measures the whole pipeline; this one times the :class:`KVTable`
primitives the write path is built from — ``set_local`` with and
without a pending backlog, idle ``receive`` + ``apply_pending`` cycles,
``effective`` previews over a backlog, ``keep``, and a
transaction open/write/rollback cycle — on a table shaped like the
failover junctions (a dozen declared keys).

Each op's cost is recorded into ``BENCH_kv_ops.json`` tagged with the
state-layer implementation (``impl``), so the file carries the
before/after history of the slot-addressed refactor: ``dict-core`` rows
were measured on the seed dict-of-objects table, ``slot-core`` rows on
the slot-addressed layer that replaced it.
"""

import time

from conftest import print_table, record_bench

from repro.runtime.kvtable import KVTable, Update

#: implementation tag stamped on every recorded row
IMPL = "slot-core"

#: per-op repetitions (each timed loop re-runs the op this many times)
N = 50_000
#: pending-backlog depth for the backlog-sensitive ops
BACKLOG = 64
#: declared keys (failover junctions declare ~a dozen)
KEYS = [f"K{i}" for i in range(12)]


def make_table(executing=False):
    t = KVTable("bench::j")
    for k in KEYS:
        t.declare(k, False)
    t.executing = executing
    return t


def _backlog(t, n=BACKLOG):
    """Queue ``n`` pending updates spread over the non-target keys
    (``receive`` while executing with no open window enqueues)."""
    for i in range(n):
        t.receive(Update(key=KEYS[1 + i % (len(KEYS) - 1)], value=True, src="peer::j"))


def bench_set_local_clean():
    t = make_table(executing=True)
    t0 = time.perf_counter()
    for i in range(N):
        t.set_local("K0", i & 1 == 0)
    return time.perf_counter() - t0, N


def bench_set_local_backlog():
    t = make_table(executing=True)
    _backlog(t)
    t0 = time.perf_counter()
    for i in range(N):
        t.set_local("K0", i & 1 == 0)
    return time.perf_counter() - t0, N


def bench_receive_apply():
    t = make_table(executing=False)
    ups = [Update(key=KEYS[i % len(KEYS)], value=True, src="peer::j") for i in range(8)]
    rounds = N // 8
    t0 = time.perf_counter()
    for _ in range(rounds):
        for u in ups:
            t.receive(u)
        t.apply_pending()
    return time.perf_counter() - t0, rounds * 8


def bench_effective_backlog():
    t = make_table(executing=False)
    _backlog(t)
    t0 = time.perf_counter()
    for _ in range(N):
        t.effective("K0")
    return time.perf_counter() - t0, N


def bench_keep_backlog():
    t = make_table(executing=True)
    rounds = N // 10
    t0 = time.perf_counter()
    for _ in range(rounds):
        _backlog(t, 10)
        t.keep(KEYS)
    return time.perf_counter() - t0, rounds


def bench_tx_cycle():
    t = make_table(executing=True)
    rounds = N // 4
    t0 = time.perf_counter()
    for _ in range(rounds):
        t.tx_begin()
        t.set_local("K0", True)
        t.set_local("K1", True)
        t.tx_rollback()
    return time.perf_counter() - t0, rounds


OPS = [
    ("set_local/clean", bench_set_local_clean),
    ("set_local/backlog", bench_set_local_backlog),
    ("receive+apply", bench_receive_apply),
    ("effective/backlog", bench_effective_backlog),
    ("keep/backlog", bench_keep_backlog),
    ("tx begin+2w+rollback", bench_tx_cycle),
]


def test_kv_micro_ops(benchmark=None):
    rows = []
    total_wall = 0.0
    for name, fn in OPS:
        best = float("inf")
        n_ops = 1
        for _ in range(3):
            wall, n_ops = fn()
            total_wall += wall
            best = min(best, wall)
        ns_per_op = best / n_ops * 1e9
        rows.append([name, f"{ns_per_op:,.0f}"])
        record_bench(
            "kv_ops",
            {
                "op": name,
                "impl": IMPL,
                "n_ops": n_ops,
                "backlog": BACKLOG,
                "keys": len(KEYS),
                "ns_per_op": round(ns_per_op, 1),
            },
            wall_seconds=best,
        )
        # sanity ceiling only — micro-op walls are machine-dependent;
        # regressions are judged against the recorded history
        assert ns_per_op < 1e6, (name, ns_per_op)
    print_table(
        f"KV micro-ops ({IMPL}, ns/op, best of 3)",
        ["op", "ns/op"],
        rows,
    )
