"""Fig. 26a: modified cURL on large files (20 MB – 1200 MB).

Paper: absolute download times for the large end of the sweep; "the
performance difference for large files is less intelligible" — the
audit overhead disappears into the transfer time.
"""

from conftest import print_table, run_once

from repro.arch.snapshot import RemoteAuditor
from repro.curlite import FileServer, run_sweep
from repro.runtime.sim import Simulator

SIZES = [20_000_000, 50_000_000, 100_000_000, 400_000_000, 700_000_000, 1_200_000_000]


def run_experiment():
    sim = Simulator()
    server = FileServer()
    server.put_standard_corpus()
    same = RemoteAuditor(placement="same-vm", sim=sim)
    cross = RemoteAuditor(placement="cross-vm", sim=sim)
    return run_sweep(
        sim, server, SIZES,
        {
            "original": ("none", None),
            "same-vm": ("continuous", same.audit_hook()),
            "cross-vm": ("continuous", cross.audit_hook()),
        },
        repetitions=5,
    )


def test_fig26a(benchmark):
    res = run_once(benchmark, run_experiment)
    rows = []
    for size in res.sizes():
        rows.append([
            f"{size // 1_000_000}MB",
            f"{res.mean(size, 'original'):7.3f}s",
            f"{res.mean(size, 'same-vm'):7.3f}s",
            f"{res.mean(size, 'cross-vm'):7.3f}s",
            f"{res.overhead_percent(size, 'cross-vm'):+5.2f}%",
        ])
    print_table("Fig 26a — cURL large-file download times",
                ["size", "original", "same-VM", "cross-VM", "cross oh"], rows)

    # download time scales ~linearly with size
    t20 = res.mean(20_000_000, "original")
    t1200 = res.mean(1_200_000_000, "original")
    assert 40 < t1200 / t20 < 80  # 60x the bytes
    # overhead has become marginal and shrinks further with size
    # ("less intelligible"): monotone decrease, under 1% by 400 MB
    cross = [res.overhead_percent(s, "cross-vm") for s in SIZES]
    assert all(cross[i] >= cross[i + 1] for i in range(len(cross) - 1))
    for size in (400_000_000, 700_000_000, 1_200_000_000):
        assert res.overhead_percent(size, "cross-vm") < 1.0
        assert res.overhead_percent(size, "same-vm") < 0.5
