"""Fig. 24a: response of the Suricata packet rate to checkpoints.

Paper setup: Suricata processing the bigFlows trace (~0.5 MPackets/s
peaks) with the same checkpointing logic as Redis; the packet rate dips
when the checkpoint freezes the pipeline and catches back up from the
queue.

Scaled here: a synthetic bigFlows-like trace at 20 KPackets/s over
120 s, checkpoints every 15 s.  Shape: rate dips at checkpoints, then
catch-up spikes (the queue drains), steady otherwise.
"""

from conftest import print_series, run_once

from repro.arch.checkpointing import CheckpointedService
from repro.runtime.sim import Simulator
from repro.suricatalite import PacketFeeder, Pipeline, TraceGenerator

DURATION = 120.0
RATE = 20_000.0
CHECKPOINT_EVERY = 15.0


def run_experiment():
    sim = Simulator()
    pipeline = Pipeline()
    # a deployment-sized flow table serializes for over a second (the
    # paper's Suricata snapshots stall long enough to be visible at 1 s
    # granularity and to produce the ~19x Fig 24c spikes)
    pipeline.CHECKPOINT_BASE = 1.2
    feeder_ref = {}
    svc = CheckpointedService(
        pipeline, stall=lambda d: feeder_ref["f"].stall(d), sim=sim
    )
    feeder = feeder_ref["f"] = PacketFeeder(sim, pipeline)
    trace = TraceGenerator(
        n_flows=300, packets_per_second=RATE, duration=DURATION, seed=104
    )
    fed = feeder.feed_trace(trace.packets())
    svc.schedule_checkpoints(CHECKPOINT_EVERY, DURATION)
    feeder.start(until=DURATION + 2.0)
    sim.run_until(DURATION + 2.0)
    return svc, feeder, fed


def test_fig24a(benchmark):
    svc, feeder, fed = run_once(benchmark, run_experiment)
    series = feeder.rate_series(1.0)
    print_series("Fig 24a — Suricata packet rate vs checkpoints (KPackets/s)",
                 [(t, r / 1000) for t, r in series], "KP/s", every=5)
    print(f"  checkpoints={svc.checkpoints} stored={svc.aud.snapshots_stored}; "
          f"fed={fed} processed={feeder.total_processed()} dropped={feeder.dropped}")

    s = dict(series)
    steady = s[10.0]
    assert steady > RATE * 0.9
    # dips at checkpoint seconds
    for tc in (15.0, 30.0, 45.0, 60.0):
        assert s[tc] < steady * 0.9, f"expected a dip at t={tc}"
    # catch-up: the second after a dip processes above the arrival rate
    assert any(s[tc + 1.0] > steady * 1.02 for tc in (15.0, 30.0, 45.0))
    # no packets lost overall
    assert feeder.total_processed() >= fed * 0.99
    assert svc.checkpoints >= 7
