"""Fig. 26c: Redis sharding by object size.

Paper setup: objects quantized into 0–4 KB / 4–64 KB / >64 KB classes,
each class served by its own back-end; a workload with a distribution
corresponding to the key-based experiment produces diverging cumulative
per-shard curves (the class mix shows as the slope ratios).
"""

from conftest import print_table, run_once

from repro.arch.sharding import ShardedRedis, object_size_chooser
from repro.redislite import BenchDriver, CostModel, WorkloadGenerator

DURATION = 60.0
CLASS_WEIGHTS = (0.6, 0.3, 0.1)  # small / medium / large object mix


def run_experiment():
    wl = WorkloadGenerator(
        n_keys=400, seed=109, size_class_weights=CLASS_WEIGHTS, get_ratio=0.8
    )
    size_table = {k: wl.key_size(k) for k in wl._keys}
    svc = ShardedRedis(
        4, mode="size", size_table=size_table,
        cost_model=CostModel(per_command=2e-3),
    )
    svc.preload(wl.preload_commands())
    chooser = object_size_chooser(4, size_table)
    res = BenchDriver(svc.sim, svc, wl, clients=8).run(DURATION)
    return svc, res, chooser


def test_fig26c(benchmark):
    svc, res, chooser = run_once(benchmark, run_experiment)
    data = res.cumulative_by(lambda c: chooser({"key": c.key}), dt=10.0)
    classes = sorted(data["series"])
    rows = []
    for i, t in enumerate(data["times"]):
        rows.append([f"{t:5.0f}s"] + [data["series"][c][i] for c in classes])
    print_table(
        "Fig 26c — cumulative requests per size-class shard "
        "(0-4KB / 4-64KB / >64KB)",
        ["time"] + [f"shard{c + 1}" for c in classes],
        rows,
    )
    print(f"  completions={res.count} shard dataset sizes={svc.shard_sizes()}")

    finals = {c: data["series"][c][-1] for c in classes}
    # the size-class mix shows in the request ratios
    assert finals[0] > 1.5 * finals[1] > 1.5 * finals[2]
    # the large class still gets real traffic
    assert finals[2] > 0
    # shard 4 idle: only three quantization classes exist
    assert len(classes) == 3
    assert svc.shard_counts[3] == 0
    assert svc.system.failures == []
