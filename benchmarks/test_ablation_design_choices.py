"""Ablations over the design choices DESIGN.md calls out.

Not paper figures — these probe *why* the reproduced shapes hold:

1. **Network latency** drives the DSL architecture's per-request cost:
   the sharding front's latency should scale ~linearly with the hop
   latency (each request is a fixed number of junction hops).
2. **Audit placement** (Figs. 25a/b) is nothing but a latency knob:
   sweeping latency should interpolate smoothly between the same-VM and
   cross-VM curves.
3. **Suricata steering batch size** trades throughput against
   reordering window: larger batches amortize the junction round.
4. **Replication degree** in parallel sharding (Fig. 6): adding warm
   replicas costs little wall-clock (they run in parallel) while each
   extra replica executes every request.
"""

from conftest import print_table, run_once

from repro.arch.sharding import ParallelShardedRedis, ShardedRedis, ShardedSuricata
from repro.arch.snapshot import RemoteAuditor
from repro.curlite import FileServer, run_sweep
from repro.redislite import BenchDriver, Command, WorkloadGenerator
from repro.runtime.sim import Simulator
from repro.suricatalite import TraceGenerator


def test_ablation_hop_latency(benchmark):
    """Sharded-front request latency ≈ affine in the hop latency."""

    def run():
        out = []
        for lat in (50e-6, 200e-6, 800e-6):
            svc = ShardedRedis(4, latency=lat)
            wl = WorkloadGenerator(n_keys=200, seed=201)
            svc.preload(wl.preload_commands())
            res = BenchDriver(svc.sim, svc, wl, clients=1).run(1.0)
            out.append((lat, res.mean_latency()))
        return out

    points = run_once(benchmark, run)
    print_table("ablation — request latency vs hop latency",
                ["hop latency", "mean request latency"],
                [[f"{l*1e6:.0f}us", f"{m*1e3:.3f}ms"] for l, m in points])
    (l0, m0), (l1, m1), (l2, m2) = points
    assert m0 < m1 < m2
    # affine: the increment per hop-latency unit is roughly constant
    slope1 = (m1 - m0) / (l1 - l0)
    slope2 = (m2 - m1) / (l2 - l1)
    assert 0.5 < slope1 / slope2 < 2.0
    # and the hop count (slope) is in a plausible band: the request
    # path crosses the network a handful of times
    assert 4 < slope2 < 20


def test_ablation_audit_latency_sweep(benchmark):
    """Audit overhead interpolates smoothly in placement latency."""

    def run():
        out = []
        for lat in (25e-6, 100e-6, 300e-6, 600e-6):
            sim = Simulator()
            server = FileServer()
            server.put_standard_corpus()
            aud = RemoteAuditor(placement="cross-vm", sim=sim)
            aud.system.network.default_latency = lat
            res = run_sweep(
                sim, server, [1_000_000],
                {"original": ("none", None),
                 "audited": ("continuous", aud.audit_hook())},
                repetitions=3,
            )
            out.append((lat, res.overhead_percent(1_000_000, "audited")))
        return out

    points = run_once(benchmark, run)
    print_table("ablation — 1MB audit overhead vs placement latency",
                ["one-way latency", "overhead"],
                [[f"{l*1e6:.0f}us", f"{o:+.1f}%"] for l, o in points])
    overheads = [o for _l, o in points]
    assert all(overheads[i] < overheads[i + 1] for i in range(len(overheads) - 1))
    assert overheads[0] < 5.0  # near same-VM
    assert overheads[-1] > overheads[0] * 3


def test_ablation_steering_batch_size(benchmark):
    """Bigger steering batches amortize the junction round-trip."""

    def run():
        trace = list(TraceGenerator(
            n_flows=80, packets_per_second=2000, duration=10, seed=202).packets())
        out = []
        for batch in (50, 200, 800):
            svc = ShardedSuricata(4, batch_size=batch)
            t0 = svc.sim.now
            for pkt in trace:
                svc.feed(pkt)
            svc.flush_all()
            svc.system.run_until(svc.sim.now + 120.0)
            elapsed = max(t for t, _s, _n in svc.packets_done) - t0
            done = sum(n for _t, _s, n in svc.packets_done)
            out.append((batch, elapsed, done))
        return out

    points = run_once(benchmark, run)
    print_table("ablation — steering completion time vs batch size",
                ["batch", "completion", "packets"],
                [[b, f"{e:.3f}s", d] for b, e, d in points])
    assert all(d == 20_000 for _b, _e, d in points)
    times = [e for _b, e, _d in points]
    assert times[0] > times[1] > times[2]


def test_ablation_failover_conservatism(benchmark):
    """Sec. 7.3 improvement (i): first-response-wins fail-over vs the
    paper's conservative all-replica wait, with one straggling replica.
    The conservative design pays the straggler on every request; the
    fast variant pays only the fastest replica."""
    from repro.arch.failover import FailoverRedis, FastFailoverRedis

    def run():
        out = {}
        for label, cls in (("conservative", FailoverRedis),
                           ("first-response", FastFailoverRedis)):
            svc = cls(timeout=0.5, slow_backend=(1, 0.05))
            lats = []
            for i in range(15):
                t0 = svc.system.now
                svc.submit(
                    Command("SET", f"k{i}", b"v"),
                    lambda r, s=t0: lats.append(svc.system.now - s),
                )
                svc.system.run_until(svc.system.now + 2.0)
            out[label] = (sum(lats) / len(lats), len(svc.system.failures))
        return out

    out = run_once(benchmark, run)
    print_table("ablation — fail-over conservatism (one 50ms straggler replica)",
                ["design", "mean latency", "failures"],
                [[k, f"{v[0]*1e3:.1f}ms", v[1]] for k, v in out.items()])
    assert out["conservative"][0] > 0.05          # pays the straggler
    assert out["first-response"][0] < out["conservative"][0] / 5
    assert all(v[1] == 0 for v in out.values())


def test_ablation_replication_degree(benchmark):
    """Parallel sharding: replicas execute in parallel, so latency grows
    slowly with the replication degree while work grows linearly."""

    def run():
        out = []
        for n in (1, 2, 4):
            svc = ParallelShardedRedis(n_backends=n, timeout=0.5)
            svc.preload([Command("SET", "k", b"v")])
            lat = []
            done = []
            for i in range(20):
                t0 = svc.sim.now + 0.0

                def cb(reply, t0=None):
                    done.append(svc.sim.now)

                start = svc.sim.now
                svc.submit(Command("GET", "k"), lambda r, s=start: lat.append(svc.sim.now - s))
                svc.system.run_until(svc.system.now + 1.0)
            total_execs = sum(svc.backend_app(i).executed for i in range(n))
            out.append((n, sum(lat) / len(lat), total_execs))
        return out

    points = run_once(benchmark, run)
    print_table("ablation — parallel sharding replication degree",
                ["replicas", "mean latency", "total backend executions"],
                [[n, f"{m*1e3:.3f}ms", e] for n, m, e in points])
    (n1, m1, e1), (n2, m2, e2), (n4, m4, e4) = points
    # work scales linearly with replicas
    assert e1 == 20 and e2 == 40 and e4 == 80
    # latency grows far sublinearly (parallel engagement)
    assert m4 < m1 * 2.5
