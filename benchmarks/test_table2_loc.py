"""Table 2: effort (LoC) needed to support software extensions.

Paper's numbers (C prototype):

    Feature        DSL  Redis(DSL)  Suricata(DSL)  Redis(C)
    Checkpointing   79           7             44       332
    Sharding       105           1             49       314
    Caching        106           6            N/A       306

We regenerate the analogous table from this repository's actual
sources: the DSL text, the per-substrate binding code, and the direct
(non-DSL) control implementations including their hand-rolled
messaging layer.  The *shape* to reproduce: DSL-side effort is a small
fraction of direct re-architecting, and the DSL text is reused across
Redis and Suricata.
"""

from conftest import print_table, run_once

from repro.arch.loc import serde_generated_loc, table2


def test_table2(benchmark):
    rows = run_once(benchmark, table2)
    print_table(
        "Table 2 — LoC to support software extensions (this repo)",
        ["Feature", "DSL", "Redis binding", "Suricata binding", "Direct (control)"],
        [
            [r.feature, r.dsl_loc, r.redis_binding_loc,
             r.suricata_binding_loc if r.suricata_binding_loc is not None else "N/A",
             r.direct_loc]
            for r in rows
        ],
    )
    gen = serde_generated_loc()
    print_table(
        "Serialization benefit — generated serializer LoC "
        "(paper: Redis KV 182, Suricata packet 2380)",
        ["Schema", "Generated LoC"],
        [["redis_kv", gen["redis_kv"]], ["suricata_packet", gen["suricata_packet"]]],
    )

    by_feature = {r.feature: r for r in rows}
    # Shape 1: the DSL (plus binding) is far cheaper than direct
    for r in rows:
        assert r.dsl_loc + r.redis_binding_loc < r.direct_loc, r
    # Shape 2: sharding & checkpointing DSL reused verbatim for Suricata
    assert by_feature["Sharding"].suricata_binding_loc is not None
    assert by_feature["Checkpointing"].suricata_binding_loc is not None
    # Shape 3: generated serializers — packet schema much larger than KV
    assert gen["suricata_packet"] > 3 * gen["redis_kv"]
