"""Workload throughput through the shipped broker architecture.

Not a paper figure — instrumentation for the workload suite
(docs/WORKLOADS.md): a seeded flash-crowd schedule over a large user
population drives ``broker_sharded`` through the engine seam, and the
benchmark records the throughput and latency shape (ops/sec, p50/p99,
drop count — which must be zero) plus the combined run digest into
``BENCH_workload_throughput.json`` for the sim and cluster engines.
The digest makes the entry self-checking: on the sim engine the same
spec must reproduce it bit-for-bit.
"""

from conftest import print_table, record_bench

from repro.workload import WorkloadSpec, materialize, run_workload

#: wall seconds per logical second on the cluster engine — generous
#: enough that real worker processes (~300 ops/s wall) drain the whole
#: schedule inside the driver's logical horizon
TIME_SCALE = 0.1

SPEC = WorkloadSpec(
    seed=0,
    users=1_000_000,
    pattern="flash-crowd",
    rate=100.0,
    duration=10.0,
    max_ops=1000,
)

ENGINES = (
    ("sim", "sim"),
    ("cluster", f"cluster,time_scale={TIME_SCALE},"
                "heartbeat_interval=0.5,heartbeat_timeout=2.0"),
)


def test_workload_throughput(benchmark=None):
    rows = []
    sim_digest = None
    for name, espec in ENGINES:
        report = run_workload(SPEC, "broker_sharded", espec)
        stats = {
            "arch": report.arch,
            "ops_submitted": report.ops_submitted,
            "ops_completed": report.ops_completed,
            "ops_failed": report.ops_failed,
            "ops_dropped": report.ops_dropped,
            "ops_per_sec": round(report.ops_per_sec, 2),
            "p50_ms": round(report.p50_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
            "logical_seconds": round(report.logical_seconds, 3),
            "digest": report.digest,
            "spec": SPEC.as_dict(),
        }
        record_bench("workload_throughput", stats, engine=name,
                     wall_seconds=report.wall_seconds)
        rows.append([
            name, stats["ops_completed"], stats["ops_per_sec"],
            stats["p50_ms"], stats["p99_ms"],
            round(report.wall_seconds, 2),
        ])

        # the guarantee: every generated op completes, none are dropped
        assert report.ops_completed == report.ops_submitted == len(materialize(SPEC))
        assert report.ops_failed == 0 and report.ops_dropped == 0
        assert 0 < report.p50_ms <= report.p99_ms

        if name == "sim":
            # simulated runs are reproducible bit-for-bit
            sim_digest = report.digest
            again = run_workload(SPEC, "broker_sharded", espec)
            assert again.digest == sim_digest
        else:
            # every engine executes the identical generated schedule
            assert report.schedule_digest == run_workload(
                SPEC, "broker_sharded", "sim"
            ).schedule_digest

    print_table(
        "flash-crowd workload, 1M users, broker_sharded (logical ms)",
        ["engine", "completed", "ops/sec", "p50 ms", "p99 ms", "wall s"],
        rows,
    )
