"""Fig. 23c: effect of caching on the Redis query rate.

Paper setup: a read-heavy workload with high skew (90% of requests to
10% of the entries, modelling memory-burdened KV deployments); the
DSL-internalized cache lifts the steady query rate by a modest margin
(~200 QPS on a ~6.2 KQ/s baseline, ≈3%).

Shape to reproduce: with-caching rate > no-caching rate, stable over
time, with a high cache hit rate under the skew.  (Our simulated gain
is larger than the paper's 3% because the simulated cache probe is
relatively cheaper than their deployment's; EXPERIMENTS.md discusses.)
"""

from conftest import print_series, run_once

from repro.arch.caching import CachedRedis
from repro.redislite import BenchDriver, CostModel, WorkloadGenerator

DURATION = 30.0


def run_one(capacity: int):
    svc = CachedRedis(capacity=capacity, cost_model=CostModel(per_command=2e-3))
    wl = WorkloadGenerator(n_keys=1000, get_ratio=0.9, skew=(0.1, 0.9), seed=103)
    svc.preload(wl.preload_commands())
    res = BenchDriver(svc.sim, svc, wl, clients=8).run(DURATION)
    return svc, res


def run_experiment():
    with_cache = run_one(capacity=150)
    # capacity 1: the cache never usefully holds the working set
    without = run_one(capacity=1)
    return with_cache, without


def test_fig23c(benchmark):
    (svc_c, res_c), (svc_n, res_n) = run_once(benchmark, run_experiment)
    series_c = res_c.qps_series(5.0)
    series_n = res_n.qps_series(5.0)
    print_series("Fig 23c — query rate WITH caching (KQ/s)",
                 [(t, q / 1000) for t, q in series_c], "KQ/s")
    print_series("Fig 23c — query rate WITHOUT caching (KQ/s)",
                 [(t, q / 1000) for t, q in series_n], "KQ/s")
    hit_rate = svc_c.cache.hits / max(1, svc_c.cache.hits + svc_c.cache.misses)
    print(f"  cache hit rate: {hit_rate:.1%}; with={res_c.count} "
          f"without={res_n.count} completions")

    # caching wins overall and in (almost) every window
    assert res_c.count > res_n.count * 1.02
    wins = sum(1 for (t1, a), (t2, b) in zip(series_c, series_n) if a >= b)
    assert wins >= len(series_c) - 1
    # the skew makes the cache effective
    assert hit_rate > 0.5
    assert svc_c.system.failures == []
