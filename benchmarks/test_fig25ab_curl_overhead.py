"""Figs. 25a and 25b: cURL remote-auditing overhead on small files.

Paper setup: cURL re-architected for remote auditing; downloads of
0.001–10 MB files over 1 GbE, with the audit instance in the same VM or
in a separate VM.  Fig. 25a shows absolute times (with std dev);
Fig. 25b the percentage increase (same-VM below cross-VM, both within
~0–20%).
"""

from conftest import print_table, run_once

from repro.arch.snapshot import RemoteAuditor
from repro.curlite import FileServer, run_sweep
from repro.runtime.sim import Simulator

SIZES = [1_000, 10_000, 100_000, 1_000_000, 10_000_000]
REPS = 20  # as the paper: repeated 20 times, averaged, with std dev


def run_experiment():
    sim = Simulator()
    server = FileServer()
    server.put_standard_corpus()
    same = RemoteAuditor(placement="same-vm", sim=sim)
    cross = RemoteAuditor(placement="cross-vm", sim=sim)
    res = run_sweep(
        sim, server, SIZES,
        {
            "original": ("none", None),
            "same-vm": ("continuous", same.audit_hook()),
            "cross-vm": ("continuous", cross.audit_hook()),
        },
        repetitions=REPS,
    )
    return res, same, cross


def test_fig25ab(benchmark):
    res, same, cross = run_once(benchmark, run_experiment)
    rows = []
    for size in res.sizes():
        rows.append([
            f"{size/1e6:g}MB",
            f"{res.mean(size, 'original')*1e3:8.2f}ms ±{res.stdev(size, 'original')*1e3:.2f}",
            f"{res.overhead_percent(size, 'same-vm'):+6.1f}%",
            f"{res.overhead_percent(size, 'cross-vm'):+6.1f}%",
        ])
    print_table("Fig 25a/25b — cURL download time and audit overhead",
                ["size", "original", "same-VM", "cross-VM"], rows)
    print(f"  audit records: same-vm={len(same.audit_log)} cross-vm={len(cross.audit_log)}")

    for size in SIZES:
        same_oh = res.overhead_percent(size, "same-vm")
        cross_oh = res.overhead_percent(size, "cross-vm")
        # audited is never faster; same-VM cheaper than cross-VM
        assert same_oh >= -0.5
        assert cross_oh > same_oh
        # within the paper's magnitude band (0–20%, small slack)
        assert cross_oh < 25.0
    # audits actually happened and recorded transfer progress
    assert len(cross.audit_log) >= REPS * len(SIZES)
    assert cross.act.complaints == 0
