"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_*`` module regenerates one table or figure from
the paper's evaluation (sec. 10): it runs the experiment on the
simulator, prints the same rows/series the paper reports, asserts the
*shape* (who wins, rough factors, crossovers), and times the
experiment through the pytest-benchmark fixture (one round — the
experiments are deterministic, so repetition only measures the
harness).

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark and return its
    result (experiments are deterministic; the timing measures the
    harness, the asserted science is in the returned data)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_series(title: str, series, unit: str = "", every: int = 1) -> None:
    print(f"\n--- {title} ---")
    for i, (t, v) in enumerate(series):
        if i % every:
            continue
        print(f"  t={t:7.1f}s  {v:12.2f} {unit}")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(f"\n--- {title} ---")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
