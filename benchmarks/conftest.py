"""Shared helpers for the benchmark harness.

Each ``benchmarks/test_*`` module regenerates one table or figure from
the paper's evaluation (sec. 10): it runs the experiment on the
simulator, prints the same rows/series the paper reports, asserts the
*shape* (who wins, rough factors, crossovers), and times the
experiment through the pytest-benchmark fixture (one round — the
experiments are deterministic, so repetition only measures the
harness).

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark and return its
    result (experiments are deterministic; the timing measures the
    harness, the asserted science is in the returned data)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


if importlib.util.find_spec("pytest_benchmark") is None:
    # pytest-benchmark is CI-only; without it, substitute a fixture that
    # just calls the function so the experiments (and their assertions)
    # still run locally
    class _FallbackBenchmark:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


#: where BENCH_*.json result files land (CI uploads them as artifacts)
BENCH_DIR = Path(os.environ.get("BENCH_JSON_DIR", "."))


def record_bench(name: str, payload: dict, *, engine: str = "sim",
                 wall_seconds: float | None = None) -> dict:
    """Append one entry to ``BENCH_<name>.json``.

    Every entry is stamped with the execution ``engine``, the host CPU
    count and (when given) the wall-clock duration, so a result file is
    interpretable without knowing which machine/engine produced it.
    """
    entry = dict(payload)
    entry.setdefault("engine", engine)
    entry.setdefault("cpu_count", os.cpu_count())
    if wall_seconds is not None:
        entry.setdefault("wall_seconds", round(wall_seconds, 6))
    path = BENCH_DIR / f"BENCH_{name}.json"
    entries = json.loads(path.read_text()) if path.exists() else []
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return entry


def print_series(title: str, series, unit: str = "", every: int = 1) -> None:
    print(f"\n--- {title} ---")
    for i, (t, v) in enumerate(series):
        if i % every:
            continue
        print(f"  t={t:7.1f}s  {v:12.2f} {unit}")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    print(f"\n--- {title} ---")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
