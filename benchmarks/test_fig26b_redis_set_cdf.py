"""Fig. 26b: CDF of SET response latencies for the same four
configurations as Fig. 25c ("The results for SET are similar").
"""

from conftest import run_once

from test_fig25c_redis_get_cdf import assert_shape, report, run_experiment

OP = "SET"


def test_fig26b_set_cdf(benchmark):
    results = run_once(benchmark, lambda: run_experiment(get_ratio=0.0))
    report(results, OP)
    assert_shape(results, OP)
