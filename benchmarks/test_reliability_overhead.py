"""Traffic overhead of the reliable-delivery layer across loss rates.

Not a paper figure — instrumentation for this repo's at-least-once
delivery layer (docs/RELIABILITY.md): as network loss grows, how much
extra traffic (retransmissions, duplicate deliveries suppressed by
receiver-side dedup) buying reliability costs, and whether the
workload still converges without `otherwise` handlers firing.
"""

from conftest import print_table, run_once

from repro.core.compiler import compile_program
from repro.runtime.system import System

N = 200
LOSS_RATES = (0.0, 0.1, 0.3)

SRC = """
instance_types { F, G }
instances { f: F, g: G }

def main(t) = start f(t) + start g(t)

def F::j(t) =
  | init prop !Go
  | guard Go
  retract[] Go;
  ({ assert[g::j] Ping; host Ok } otherwise[t] host Lost)

def G::j(t) =
  | init prop !Ping
  skip
"""


def run_at_loss(p: float):
    system = System(compile_program(SRC), latency=0.001, seed=7)
    system.network.drop_probability = p
    counts = {"ok": 0, "lost": 0}

    @system.host("F", "Ok")
    def _ok(ctx):
        counts["ok"] += 1

    @system.host("F", "Lost")
    def _lost(ctx):
        counts["lost"] += 1

    system.start(t=5.0)
    for i in range(N):
        system.sim.call_at(1.0 + i, lambda: system.external_update("f::j", "Go", True))
    system.run_until(N + 10.0)
    # read the labeled net_* counters back from the metrics registry
    reg = system.telemetry.metrics
    stats = dict(system.network.stats)
    assert stats["update_sent"] == reg.sum("net_sent", kind="update")
    return counts, stats


def run_experiment():
    return {p: run_at_loss(p) for p in LOSS_RATES}


def test_reliability_overhead(benchmark):
    results = run_once(benchmark, run_experiment)

    rows = []
    for p, (counts, stats) in results.items():
        rows.append([
            f"{p:.1f}",
            counts["ok"],
            counts["lost"],
            stats.get("update_sent", 0),
            stats.get("retransmits", 0),
            stats.get("dedup_suppressed", 0),
            stats.get("delivery_failures", 0),
            f"{stats.get('update_sent', 0) / N:.2f}x",
        ])
    print_table(
        "Reliable delivery — traffic overhead vs loss rate",
        ["loss", "ok", "lost", "upd_sent", "retransmits", "dedup", "failures", "overhead"],
        rows,
    )

    clean = results[0.0]
    assert clean[0]["ok"] == N and clean[0]["lost"] == 0
    assert clean[1].get("retransmits", 0) == 0  # reliability is free when lossless

    for p in (0.1, 0.3):
        counts, stats = results[p]
        assert counts["ok"] + counts["lost"] == N  # every send resolves
        assert counts["ok"] >= 0.9 * N  # retransmission recovers almost all
        assert stats["retransmits"] > 0
        assert stats["dedup_suppressed"] > 0  # lost acks caused duplicates

    # overhead grows with loss
    assert results[0.3][1]["retransmits"] > results[0.1][1]["retransmits"]
