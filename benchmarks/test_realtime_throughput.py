"""Execution-engine throughput: the same workload on sim vs realtime.

Not a paper figure — instrumentation for the pluggable execution
engine (docs/RUNTIME.md): one seeded GET/SET workload over the
sharded-redis architecture, run on each engine, recording

* ops/sec (completed operations over wall-clock duration), and
* p50 / p99 wall-clock latency per operation (submit → reply)

into ``BENCH_realtime_throughput.json``.  The sim engine is expected
to dominate on throughput (no wall-time pacing); the realtime numbers
characterize the asyncio timer + transport overhead at the configured
``TIME_SCALE``.
"""

import statistics
import time

from conftest import print_table, record_bench

from repro.arch.sharding import ShardedRedis
from repro.redislite import Command
from repro.runtime import RealtimeEngine, default_engine

N_OPS = 60
#: wall seconds per logical second for the realtime engines
TIME_SCALE = 0.01
#: logical seconds granted per operation
OP_BUDGET = 1.0

ENGINES = (
    ("sim", None),
    ("realtime", lambda: RealtimeEngine(time_scale=TIME_SCALE)),
    ("realtime-tcp", lambda: RealtimeEngine(time_scale=TIME_SCALE, transport="tcp")),
)


def run_workload(engine_factory):
    if engine_factory is None:
        svc = ShardedRedis(n_shards=2, seed=0)
    else:
        with default_engine(engine_factory):
            svc = ShardedRedis(n_shards=2, seed=0)
    latencies = []
    wall0 = time.perf_counter()
    for i in range(N_OPS):
        done = []
        cmd = (
            Command("SET", f"k{i % 8}", b"v%d" % i)
            if i % 3
            else Command("GET", f"k{i % 8}")
        )
        t_submit = time.perf_counter()
        svc.submit(cmd, lambda reply: done.append(time.perf_counter()))
        svc.system.run_until(svc.system.now + OP_BUDGET)
        assert done, f"op {i} did not complete within its budget"
        latencies.append(done[0] - t_submit)
    wall = time.perf_counter() - wall0
    assert not svc.system.failures
    svc.system.shutdown()
    return wall, latencies


def test_engine_throughput():
    rows = []
    results = {}
    for name, factory in ENGINES:
        wall, lat = run_workload(factory)
        qs = statistics.quantiles(lat, n=100)
        ops_per_sec = N_OPS / wall
        p50_ms, p99_ms = qs[49] * 1e3, qs[98] * 1e3
        results[name] = ops_per_sec
        record_bench(
            "realtime_throughput",
            {
                "n_ops": N_OPS,
                "time_scale": None if factory is None else TIME_SCALE,
                "ops_per_sec": round(ops_per_sec, 2),
                "p50_ms": round(p50_ms, 3),
                "p99_ms": round(p99_ms, 3),
            },
            engine=name,
            wall_seconds=wall,
        )
        rows.append([name, f"{ops_per_sec:.1f}", f"{p50_ms:.2f}", f"{p99_ms:.2f}"])

    print_table(
        "engine throughput (sharded redis, %d ops)" % N_OPS,
        ["engine", "ops/sec", "p50 ms", "p99 ms"],
        rows,
    )
    # every engine completed the full workload; the sim engine is not
    # wall-time paced, so it must out-run both realtime backends
    assert all(v > 0 for v in results.values())
    assert results["sim"] > results["realtime"]
    assert results["sim"] > results["realtime-tcp"]
