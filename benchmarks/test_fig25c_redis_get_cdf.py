"""Fig. 25c: CDF of GET response latencies for original Redis and the
three C-Saw derivatives (replication, shard-by-key, shard-by-size).

Paper shape: all derivatives add noticeable but low overhead over the
baseline; "replication" (checkpoint/restart-based) has a low average
but the longest tail latency, for a very small percentile.
"""

from conftest import print_table, run_once

from repro.arch.checkpointing import CheckpointedService
from repro.arch.sharding import ShardedRedis
from repro.redislite import BenchDriver, DirectPort, RedisServer, WorkloadGenerator
from repro.runtime.sim import Simulator

DURATION = 5.0
OP = "GET"


def _workload(seed=108, get_ratio=1.0):
    return WorkloadGenerator(n_keys=500, get_ratio=get_ratio, seed=seed,
                             size_class_weights=(0.8, 0.15, 0.05))


def run_baseline(get_ratio=1.0):
    sim = Simulator()
    server = RedisServer()
    port = DirectPort(sim, server)
    wl = _workload(get_ratio=get_ratio)
    for cmd in wl.preload_commands():
        server.execute(cmd)
    return BenchDriver(sim, port, wl, clients=4).run(DURATION)


def run_replication(get_ratio=1.0):
    """Checkpoint/restart-based replication: periodic snapshots stall
    the single-threaded server, producing the long tail."""
    sim = Simulator()
    server = RedisServer()
    ref = {}
    svc = CheckpointedService(server, stall=lambda d: ref["p"].stall(d), sim=sim)
    port = ref["p"] = DirectPort(sim, server)
    wl = _workload(get_ratio=get_ratio)
    for cmd in wl.preload_commands():
        server.execute(cmd)
    svc.schedule_checkpoints(interval=1.0, until=DURATION)
    return BenchDriver(sim, port, wl, clients=4).run(DURATION)


def run_sharded(mode, get_ratio=1.0):
    wl = _workload(get_ratio=get_ratio)
    size_table = {k: wl.key_size(k) for k in wl._keys}
    svc = ShardedRedis(4, mode=mode, size_table=size_table, latency=100e-6)
    svc.preload(wl.preload_commands())
    return BenchDriver(svc.sim, svc, wl, clients=4).run(DURATION)


def run_experiment(get_ratio=1.0):
    return {
        "baseline": run_baseline(get_ratio),
        "replication": run_replication(get_ratio),
        "shard-key": run_sharded("key", get_ratio),
        "shard-size": run_sharded("size", get_ratio),
    }


def report(results, op):
    rows = []
    for name, res in results.items():
        rows.append([
            name,
            res.count,
            f"{res.percentile(0.50, op)*1e3:7.3f}ms",
            f"{res.percentile(0.99, op)*1e3:7.3f}ms",
            f"{max(res.latencies(op))*1e3:8.3f}ms",
        ])
    print_table(f"latency CDF summary ({op})",
                ["config", "n", "p50", "p99", "max"], rows)


def assert_shape(results, op):
    base = results["baseline"]
    repl = results["replication"]
    key = results["shard-key"]
    size = results["shard-size"]
    # the architecture layers add latency over the baseline
    assert key.percentile(0.5, op) > base.percentile(0.5, op)
    assert size.percentile(0.5, op) > base.percentile(0.5, op)
    # replication's *average* stays near the baseline...
    assert repl.percentile(0.5, op) < 2.0 * base.percentile(0.5, op)
    # ...but its tail is the longest of all configurations
    tails = {n: max(r.latencies(op)) for n, r in results.items()}
    assert tails["replication"] == max(tails.values())
    # and the tail is a very small percentile: p99 is still modest
    assert repl.percentile(0.99, op) < tails["replication"] / 5


def test_fig25c_get_cdf(benchmark):
    results = run_once(benchmark, lambda: run_experiment(get_ratio=1.0))
    report(results, OP)
    assert_shape(results, OP)
