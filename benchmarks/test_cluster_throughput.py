"""Cluster-engine throughput: the multi-process deployment's relay cost.

Not a paper figure — instrumentation for the cluster backend
(docs/RUNTIME.md): the seeded GET/SET workload over the sharded-redis
architecture, run once in-process (realtime) and once through real
worker processes (cluster, one per instance and again sharded onto 2
workers), recording ops/sec and p50/p99 submit→reply wall latency into
``BENCH_cluster_throughput.json``.  Every cluster op pays two extra
socket hops (coordinator → worker → coordinator), so the realtime
engine is expected to dominate; the cluster numbers characterize that
relay plus the heartbeat machinery running alongside the workload.
"""

import statistics
import time

from conftest import print_table, record_bench

from repro.arch.sharding import ShardedRedis
from repro.redislite import Command
from repro.runtime import ClusterEngine, RealtimeEngine, default_engine

N_OPS = 40
#: wall seconds per logical second (20x compression: the cluster's
#: spawn + relay wall costs need more logical headroom than inproc)
TIME_SCALE = 0.05
#: logical seconds granted per operation
OP_BUDGET = 1.0

ENGINES = (
    ("realtime", lambda: RealtimeEngine(time_scale=TIME_SCALE)),
    ("cluster", lambda: ClusterEngine(time_scale=TIME_SCALE)),
    ("cluster-2w", lambda: ClusterEngine(time_scale=TIME_SCALE, workers=2)),
)


def run_workload(engine_factory):
    with default_engine(engine_factory):
        svc = ShardedRedis(n_shards=2, seed=0)
    latencies = []
    wall0 = time.perf_counter()
    for i in range(N_OPS):
        done = []
        cmd = (
            Command("SET", f"k{i % 8}", b"v%d" % i)
            if i % 3
            else Command("GET", f"k{i % 8}")
        )
        t_submit = time.perf_counter()
        svc.submit(cmd, lambda reply: done.append(time.perf_counter()))
        svc.system.run_until(svc.system.now + OP_BUDGET)
        assert done, f"op {i} did not complete within its budget"
        latencies.append(done[0] - t_submit)
    wall = time.perf_counter() - wall0
    assert not svc.system.failures
    svc.system.shutdown()
    return wall, latencies


def test_cluster_throughput():
    rows = []
    results = {}
    for name, factory in ENGINES:
        wall, lat = run_workload(factory)
        qs = statistics.quantiles(lat, n=100)
        ops_per_sec = N_OPS / wall
        p50_ms, p99_ms = qs[49] * 1e3, qs[98] * 1e3
        results[name] = ops_per_sec
        record_bench(
            "cluster_throughput",
            {
                "n_ops": N_OPS,
                "time_scale": TIME_SCALE,
                "ops_per_sec": round(ops_per_sec, 2),
                "p50_ms": round(p50_ms, 3),
                "p99_ms": round(p99_ms, 3),
            },
            engine=name,
            wall_seconds=wall,
        )
        rows.append([name, f"{ops_per_sec:.1f}", f"{p50_ms:.2f}", f"{p99_ms:.2f}"])

    print_table(
        "cluster throughput (sharded redis, %d ops)" % N_OPS,
        ["engine", "ops/sec", "p50 ms", "p99 ms"],
        rows,
    )
    # every deployment completed the full workload through real
    # processes; relative speed is machine-dependent, so only the
    # completion and the recorded numbers are asserted
    assert all(v > 0 for v in results.values())
