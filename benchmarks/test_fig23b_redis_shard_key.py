"""Fig. 23b: cumulative requests sharded by key (4 shards, djb2).

Paper setup: 4 back-end Redis instances behind the DSL sharding
architecture; an *uneven* workload puts different pressure on different
back-ends; the cumulative per-shard request curves diverge in the
workload's ratios ("we confirmed that the ratio between shards matches
that of the workload"), reaching hundreds of KReq over ~100 s.

Scaled here: 60 s timeline with a heavier per-command cost so the DSL
architecture's event count stays laptop-sized; the asserted shape is
the per-shard cumulative ratio.
"""

from conftest import print_table, run_once

from repro.arch.sharding import ShardedRedis
from repro.redislite import BenchDriver, CostModel, WorkloadGenerator, djb2

DURATION = 60.0
WEIGHTS = (4, 2, 1, 1)  # the uneven workload's per-shard pressure


def run_experiment():
    svc = ShardedRedis(
        n_shards=4, cost_model=CostModel(per_command=2e-3), latency=100e-6
    )
    wl = WorkloadGenerator(n_keys=1000, seed=102, shard_weights=WEIGHTS)
    svc.preload(wl.preload_commands())
    res = BenchDriver(svc.sim, svc, wl, clients=8).run(DURATION)
    return svc, res


def test_fig23b(benchmark):
    svc, res = run_once(benchmark, run_experiment)
    data = res.cumulative_by(lambda c: djb2(c.key) % 4, dt=10.0)
    rows = []
    for i, t in enumerate(data["times"]):
        rows.append([f"{t:5.0f}s"] + [data["series"][s][i] for s in sorted(data["series"])])
    print_table("Fig 23b — cumulative requests per shard (uneven workload)",
                ["time", "shard1", "shard2", "shard3", "shard4"], rows)
    print(f"  completions={res.count}, failures={len(svc.system.failures)}")

    finals = {s: data['series'][s][-1] for s in data["series"]}
    total = sum(finals.values())
    assert total > 3000
    # ratios follow the 4:2:1:1 workload pressure
    assert finals[0] > 1.6 * finals[1]
    assert finals[1] > 1.6 * finals[2]
    assert abs(finals[2] - finals[3]) < 0.3 * max(finals[2], finals[3])
    # curves are monotone (cumulative)
    for s in data["series"].values():
        assert all(s[i] <= s[i + 1] for i in range(len(s) - 1))
    assert svc.system.failures == []
