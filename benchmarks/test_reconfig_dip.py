"""Latency dip across a live reconfiguration.

Not a paper figure — instrumentation for the reconfiguration subsystem
(docs/RECONFIG.md): a steady client workload runs against the sharded
redis while the system reshards 2 → 3 underneath it.  Requests that
land inside the quiesce/cutover window buffer through reliable
delivery and replay after resume, so none are dropped — they pay the
transition as *latency*.  The benchmark records that dip: p50 logical
submit→reply latency before / during / after the window, the worst
in-window latency, the transition duration, and the drop count (which
must be zero), into ``BENCH_reconfig_dip.json`` for the sim and
realtime engines.
"""

import statistics
import time

from conftest import print_table, record_bench

from repro.arch.sharding import ShardedRedis
from repro.redislite import Command
from repro.runtime import RealtimeEngine, default_engine

#: wall seconds per logical second on the realtime engine
TIME_SCALE = 0.02
#: ops per phase (steady 1 op / logical second cadence)
PHASE_OPS = 10

ENGINES = (
    ("sim", None),
    ("realtime", lambda: RealtimeEngine(time_scale=TIME_SCALE)),
)


def run_dip(engine_factory):
    if engine_factory is None:
        svc = ShardedRedis(n_shards=2, seed=0, timeout=60.0)
    else:
        with default_engine(engine_factory):
            svc = ShardedRedis(n_shards=2, seed=0, timeout=60.0)
    sys_ = svc.system
    clock = sys_.clock
    results = {}  # i -> (t_submit, t_done, ok)

    def submit(i):
        t0 = clock.now
        svc.submit(
            Command("SET", f"k{i}", b"%d" % i),
            lambda r, i=i, t0=t0: results.setdefault(
                i, (t0, clock.now, bool(r.ok))
            ),
        )

    n = 0
    for _ in range(PHASE_OPS):
        submit(n)
        n += 1
        sys_.run_until(sys_.now + 1.0)

    # keep traffic flowing while reconfigure() blocks the driver: a
    # geometric burst so several requests land inside the window even
    # when the transition is short
    offsets = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.5, 3.0, 5.0, 8.0)
    for j, off in enumerate(offsets):
        clock.call_after(off, lambda i=n + j: submit(i))
    n += len(offsets)
    wall0 = time.perf_counter()
    rep = svc.reconfigure_shards(3)
    wall = time.perf_counter() - wall0
    assert rep.ok, rep.reason
    sys_.run_until(sys_.now + 15.0)

    for _ in range(PHASE_OPS):
        submit(n)
        n += 1
        sys_.run_until(sys_.now + 1.0)
    sys_.run_until(sys_.now + 10.0)
    assert not sys_.failures
    sys_.shutdown()

    dropped = n - len(results)
    failed = sum(1 for (_, _, ok) in results.values() if not ok)
    phases = {"before": [], "during": [], "after": []}
    for t0, t1, _ in results.values():
        if t1 <= rep.started_at:
            phase = "before"
        elif t0 <= rep.finished_at:
            phase = "during"  # lifetime overlaps the transition window
        else:
            phase = "after"
        phases[phase].append(t1 - t0)
    return {
        "n_ops": n,
        "dropped": dropped,
        "failed": failed,
        "duration": round(rep.finished_at - rep.started_at, 3),
        "p50_before": round(statistics.median(phases["before"]), 3),
        "p50_during": round(statistics.median(phases["during"]), 3),
        "p50_after": round(statistics.median(phases["after"]), 3),
        "max_during": round(max(phases["during"]), 3),
        "n_during": len(phases["during"]),
    }, wall


def test_reconfig_dip(benchmark=None):
    rows = []
    for name, factory in ENGINES:
        stats, wall = run_dip(factory)
        record_bench("reconfig_dip", stats, engine=name, wall_seconds=wall)
        rows.append([
            name, stats["n_during"], stats["p50_before"], stats["p50_during"],
            stats["p50_after"], stats["max_during"], stats["duration"],
        ])
        # the guarantee: the window shows up as latency, never as loss
        assert stats["dropped"] == 0 and stats["failed"] == 0
        assert stats["n_during"] > 0
        # the dip heals: steady state returns to the baseline
        assert stats["p50_after"] <= stats["p50_before"] + 1.0
        if stats["duration"] > 0.01:
            # a real window (wall-clock engines): some request inside
            # it waited, so the worst in-window latency shows the dip
            assert stats["max_during"] > stats["p50_before"]

    print_table(
        "reconfiguration latency dip (sharded redis 2->3, logical seconds)",
        ["engine", "in-window", "p50 before", "p50 during",
         "p50 after", "max during", "transition"],
        rows,
    )
