"""Junction-compiler speedup: sim event throughput, compiled vs interpreted.

Acceptance figure for the build-time junction compiler
(docs/RUNTIME.md, "The junction compiler"): the same external-update
storm is driven through two shipped architectures with the compiler
off (tree-walking interpreter) and on (specialized generated
bodies), and the ratio of sim *event* throughput is recorded into
``BENCH_compile_throughput.json``.

The storm targets ``FrontT::b`` — a guard-less junction whose body
falls through its case arms on the probe key — so each
``external_update`` costs two scheduling attempts plus one body
execution per mode, and the measured delta is dominated by
guard/body evaluation rather than I/O plumbing.  Telemetry is
disabled so neither mode pays export serialization; event counts are
taken from the simulator's global sequence counter and asserted
equal across modes (same semantics, different evaluator).

Walls are best-of-``ROUNDS`` with the modes interleaved inside each
round, which cancels most machine noise; the target ratio is >= 8x
on both architectures (raised from 5x with the slot-addressed state
layer: slot-direct loads, inlined case-arm conditions, and the
scheduling fast paths cut the compiled storm wall by ~40%).
"""

import statistics
import time

from conftest import print_table, record_bench

from repro.arch.failover import FailoverRedis, FastFailoverRedis
from repro.compile import compilation

#: external updates per timed storm
N_UPDATES = 20_000
#: drain the zero-delay lane every this many updates
DRAIN_EVERY = 512
#: best-of rounds, modes interleaved within each round
ROUNDS = 3
#: acceptance floor on events/sec ratio, compiled over interpreted
TARGET_RATIO = 8.0

ARCHES = (
    ("failover", lambda: FailoverRedis(seed=0)),
    ("failover_fast", lambda: FastFailoverRedis(seed=0)),
)


def storm(make, compiled):
    """One build + storm; returns (wall_seconds, n_events, latencies)
    where latencies are per-``DRAIN_EVERY``-batch walls (submit the
    batch + drain the zero-delay lane), in seconds."""
    with compilation(compiled):
        svc = make()
    svc.system.telemetry.enabled = False
    sim = svc.system.sim
    svc.system.run_until(sim.now + 2.0)  # settle startup churn
    e0 = next(sim._seq)
    latencies = []
    t0 = time.perf_counter()
    tb = t0
    for i in range(N_UPDATES):
        svc.system.external_update("f::b", "Retried", False)
        if i % DRAIN_EVERY == DRAIN_EVERY - 1:
            svc.system.run_until(sim.now + 0.001)
            now_w = time.perf_counter()
            latencies.append(now_w - tb)
            tb = now_w
    svc.system.run_until(sim.now + 1.0)
    wall = time.perf_counter() - t0
    n_events = next(sim._seq) - e0
    assert not svc.system.failures, svc.system.failures[:2]
    svc.system.shutdown()
    return wall, n_events, latencies


def test_compile_throughput():
    rows = []
    ratios = {}
    for name, make in ARCHES:
        best = {False: float("inf"), True: float("inf")}
        events = {}
        lat = {}
        for _ in range(ROUNDS):
            for compiled in (False, True):
                wall, n_events, lats = storm(make, compiled)
                if wall < best[compiled]:
                    best[compiled] = wall
                    lat[compiled] = lats
                events[compiled] = n_events
        # Same storm, same semantics: the event streams must agree.
        assert events[False] == events[True], (name, events)
        n_ev = events[True]
        eps_interp = n_ev / best[False]
        eps_compiled = n_ev / best[True]
        ratio = eps_compiled / eps_interp
        ratios[name] = ratio

        def batch_ms(latencies, q):
            return statistics.quantiles(latencies, n=100)[q - 1] * 1e3

        record_bench(
            "compile_throughput",
            {
                "arch": name,
                "n_updates": N_UPDATES,
                "n_events": n_ev,
                "interp_wall_s": round(best[False], 4),
                "compiled_wall_s": round(best[True], 4),
                "interp_events_per_sec": round(eps_interp, 1),
                "compiled_events_per_sec": round(eps_compiled, 1),
                "interp_batch_p50_ms": round(batch_ms(lat[False], 50), 3),
                "interp_batch_p99_ms": round(batch_ms(lat[False], 99), 3),
                "compiled_batch_p50_ms": round(batch_ms(lat[True], 50), 3),
                "compiled_batch_p99_ms": round(batch_ms(lat[True], 99), 3),
                "batch_size": DRAIN_EVERY,
                "ratio": round(ratio, 2),
                "target_ratio": TARGET_RATIO,
                "rounds": ROUNDS,
            },
            wall_seconds=best[False] + best[True],
        )
        rows.append(
            [
                name,
                f"{eps_interp:,.0f}",
                f"{eps_compiled:,.0f}",
                f"{ratio:.2f}x",
            ]
        )

    print_table(
        "junction compiler: sim event throughput (%d-update storm)" % N_UPDATES,
        ["arch", "interp ev/s", "compiled ev/s", "speedup"],
        rows,
    )
    for name, ratio in ratios.items():
        assert ratio >= TARGET_RATIO, (
            f"{name}: compiled/interpreted event throughput {ratio:.2f}x "
            f"below the {TARGET_RATIO}x target"
        )
