"""Fig. 24c: normalized overhead of the checkpointing reconfiguration
of Suricata, plus the sharding overhead figure from sec. 10.3.

Paper: overhead is usually below ~10% and spikes to ~19x during
checkpoint-restart-and-resume phases; the sharding feature costs ~60%.

We compute the per-second ratio of unmodified to modified packet
processing rate on the same trace (values >1 mean overhead; spikes
align with checkpoints), and compare DSL-sharded against unmodified
throughput for the sharding overhead.
"""

from conftest import print_series, run_once

from repro.arch.checkpointing import CheckpointedService
from repro.arch.sharding import ShardedSuricata
from repro.runtime.sim import Simulator
from repro.suricatalite import PacketFeeder, Pipeline, TraceGenerator

DURATION = 60.0
RATE = 20_000.0


def run_feeder(with_checkpoints: bool):
    sim = Simulator()
    pipeline = Pipeline()
    # a deployment-sized flow table serializes for over a second (the
    # paper's Suricata snapshots stall long enough to be visible at 1 s
    # granularity and to produce the ~19x Fig 24c spikes)
    pipeline.CHECKPOINT_BASE = 1.2
    ref = {}
    feeder = PacketFeeder(sim, pipeline)
    ref["f"] = feeder
    if with_checkpoints:
        svc = CheckpointedService(pipeline, stall=lambda d: ref["f"].stall(d), sim=sim)
        svc.schedule_checkpoints(15.0, DURATION)
    trace = TraceGenerator(n_flows=300, packets_per_second=RATE, duration=DURATION, seed=106)
    feeder.feed_trace(trace.packets())
    feeder.start(until=DURATION + 2.0)
    sim.run_until(DURATION + 2.0)
    return feeder


def run_experiment():
    modified = run_feeder(with_checkpoints=True)
    unmodified = run_feeder(with_checkpoints=False)
    return modified, unmodified


def test_fig24c_checkpoint_overhead(benchmark):
    modified, unmodified = run_once(benchmark, run_experiment)
    mod = dict(modified.rate_series(1.0))
    base = dict(unmodified.rate_series(1.0))
    # normalized overhead per window: unmodified/modified rate, with a
    # floor on the modified rate so full-stall windows show as a capped
    # spike (~the paper's log-scale 19x peaks) rather than infinity
    ratio = []
    for t in sorted(set(mod) & set(base)):
        if base[t] > 0:
            floor = base[t] / 25.0
            ratio.append((t, base[t] / max(mod[t], floor)))
    print_series("Fig 24c — normalized overhead (unmodified rate / modified rate)",
                 ratio, "x", every=3)

    off_checkpoint = [v for t, v in ratio if int(t) % 15 not in (0, 1) and t > 2]
    # usually low overhead (paper: usually < 10%)...
    assert sum(off_checkpoint) / len(off_checkpoint) < 1.10
    # ...with large spikes during checkpoint-stall windows (paper: ~19x)
    spikes = [v for t, v in ratio if 15.0 <= t <= 17.0 or 30.0 <= t <= 32.0]
    assert max(spikes) > 5.0, f"expected a checkpoint spike, got {spikes}"


def test_sharding_overhead_sec_10_3(benchmark):
    """Sec. 10.3: 'The performance overhead of the sharding feature is
    around 60%' — steering through the architecture costs real
    throughput vs. the unmodified single pipeline."""

    def run():
        # unmodified: one pipeline processes the trace directly
        trace = list(
            TraceGenerator(n_flows=100, packets_per_second=2000, duration=20, seed=107).packets()
        )
        base_pipeline = Pipeline()
        base_cost = sum(base_pipeline.process(p) for p in trace)

        # sharded: the same packets through the DSL steering front
        svc = ShardedSuricata(n_shards=4, batch_size=200, latency=100e-6)
        t0 = svc.sim.now
        for pkt in trace:
            svc.feed(pkt)
        svc.flush_all()
        svc.system.run_until(svc.sim.now + 60.0)
        done_times = [t for t, _s, _n in svc.packets_done]
        sharded_elapsed = max(done_times) - t0
        return base_cost, sharded_elapsed, svc

    base_cost, sharded_elapsed, svc = run_once(benchmark, run)
    overhead = (sharded_elapsed - base_cost) / base_cost
    print(f"\nsharding: unmodified CPU {base_cost:.3f}s vs architecture "
          f"completion {sharded_elapsed:.3f}s -> overhead {overhead:.0%} "
          f"(paper: ~60%)")
    assert overhead > 0.2  # steering is not free
    assert sum(n for _t, _s, n in svc.packets_done) == 40_000
