"""Differential: the DSL broker architectures vs the direct control
arm (same pattern as the sharding/fail-over differentials).

Both arms execute the same deterministic publish/fetch/commit workload
sequentially; client outputs and final partition logs must agree.
"""

from random import Random

from repro.arch.broker import ReplicatedBroker, ShardedBroker
from repro.brokerlite import BrokerRequest
from repro.direct import DirectShardedBroker
from repro.runtime.sim import Simulator

SEED = 7
N_PARTITIONS = 2


def _workload(n, *, users=8, read_ratio=0.3):
    """A seeded broker command mix (deterministic in SEED)."""
    rng = Random(SEED)
    out = []
    for i in range(n):
        key = f"u{rng.randrange(users)}"
        r = rng.random()
        if r < read_ratio / 2:
            out.append(BrokerRequest(op="FETCH", partition=rng.randrange(N_PARTITIONS),
                                     offset=0, max_records=8))
        elif r < read_ratio:
            out.append(BrokerRequest(op="COMMIT", partition=rng.randrange(N_PARTITIONS),
                                     group="g", offset=rng.randrange(3)))
        else:
            out.append(BrokerRequest(op="PUB", partition=0, key=key,
                                     value=b"v%d" % i))
    return out


def _drive_dsl(svc, requests, step=2.0):
    replies = []
    for req in requests:
        got = []
        svc.submit(req, got.append)
        svc.system.run_until(svc.system.now + step)
        assert got, f"no reply for {req}"
        replies.append(got[0])
    return replies


def _drive_direct(svc, sim, requests):
    replies = []
    for req in requests:
        got = []
        svc.submit(req, got.append)
        sim.run()
        assert got, f"no reply for {req}"
        replies.append(got[0])
    return replies


def _as_tuples(replies):
    """Reply essence, with the simulated append timestamps stripped
    from fetched records — the two arms' clocks advance differently,
    the log content and order must not."""
    return [
        (
            r.ok,
            r.offset,
            None if r.records is None else [rec[:3] for rec in r.records],
            r.high_water,
        )
        for r in replies
    ]


class TestShardedBrokerDifferential:
    def test_same_outputs_and_final_logs(self):
        requests = _workload(40)
        preload = [(f"u{i}", b"seed") for i in range(8)]

        dsl = ShardedBroker(n_partitions=N_PARTITIONS, seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, requests)

        sim = Simulator()
        direct = DirectShardedBroker(sim, n_partitions=N_PARTITIONS)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, requests)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)

        dsl_logs = [dsl.server(p).partition(p).snapshot() for p in range(N_PARTITIONS)]
        direct_logs = [
            direct.servers[p].partition(p).snapshot() for p in range(N_PARTITIONS)
        ]
        # timestamps differ between arms (simulated clocks advance
        # differently); the log content and order must not
        strip = lambda logs: [[rec[:3] for rec in log] for log in logs]  # noqa: E731
        assert strip(dsl_logs) == strip(direct_logs)

        dsl_commits = [dsl.server(p).commits for p in range(N_PARTITIONS)]
        direct_commits = [direct.servers[p].commits for p in range(N_PARTITIONS)]
        assert dsl_commits == direct_commits

    def test_dsl_run_is_deterministic(self):
        requests = _workload(15)
        runs = []
        for _ in range(2):
            svc = ShardedBroker(n_partitions=N_PARTITIONS, seed=SEED)
            runs.append(_as_tuples(_drive_dsl(svc, requests)))
        assert runs[0] == runs[1]


class TestReplicatedBrokerDifferential:
    def test_replicas_agree_with_direct_log(self):
        """The fail-over broker fans every command out to both
        replicas; each replica's log must equal the direct single-node
        log of the same workload."""
        requests = [r for r in _workload(30) if r.op == "PUB"]

        repl = ReplicatedBroker(seed=SEED, timeout=0.5, n_partitions=N_PARTITIONS)
        repl_replies = _drive_dsl(repl, requests)
        assert all(r.ok for r in repl_replies)

        sim = Simulator()
        direct = DirectShardedBroker(sim, n_partitions=N_PARTITIONS)
        direct_replies = _drive_direct(direct, sim, requests)

        assert _as_tuples(repl_replies) == _as_tuples(direct_replies)

        strip = lambda snap: [rec[:3] for rec in snap]  # noqa: E731
        for p in range(N_PARTITIONS):
            want = strip(direct.servers[p].partition(p).snapshot())
            for replica in range(2):
                got = strip(repl.backend_app(replica).payload.partition(p).snapshot())
                assert got == want, f"replica {replica} partition {p} diverged"
