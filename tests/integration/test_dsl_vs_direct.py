"""Differential tests: DSL architectures vs the direct (non-DSL)
control arm.

Table 2's claim is that both arms implement *the same feature*.  These
tests drive both implementations with the same deterministic workload
and require identical client outputs and identical final KV state —
for sharding, fail-over and checkpointing.

Requests are submitted sequentially (each reply collected before the
next submit) so the comparison is schedule-independent.
"""

import random

from repro.arch.caching import CachedRedis
from repro.arch.checkpointing import CheckpointedService
from repro.arch.elastic import ElasticWorkers
from repro.arch.failover import FailoverRedis
from repro.arch.migration import MigratableRedis
from repro.arch.sharding import ShardedRedis
from repro.arch.snapshot import RemoteAuditor
from repro.curlite.client import TransferClient
from repro.curlite.fileserver import FileServer, LinkModel
from repro.direct import (
    DirectCachedRedis,
    DirectCheckpointManager,
    DirectElasticWorkers,
    DirectFailoverRedis,
    DirectMigratableRedis,
    DirectRemoteAuditor,
    DirectShardedRedis,
)
from repro.redislite import Command, RedisServer, WorkloadGenerator
from repro.redislite.bench import DirectPort
from repro.runtime.sim import Simulator

SEED = 7


def _workload(n, *, get_ratio=0.5):
    gen = WorkloadGenerator(seed=SEED, n_keys=16, get_ratio=get_ratio)
    return list(gen.commands(n))


def _drive_dsl(svc, commands, step=2.0):
    """Submit sequentially against a DSL service, one reply at a time."""
    replies = []
    for cmd in commands:
        got = []
        svc.submit(cmd, got.append)
        svc.system.run_until(svc.system.now + step)
        assert got, f"no reply for {cmd}"
        replies.append(got[0])
    return replies


def _drive_direct(svc, sim, commands):
    replies = []
    for cmd in commands:
        got = []
        svc.submit(cmd, got.append)
        sim.run()
        assert got, f"no reply for {cmd}"
        replies.append(got[0])
    return replies


def _as_tuples(replies):
    return [(r.ok, r.value, r.hit) for r in replies]


class TestShardingDifferential:
    def test_same_outputs_and_final_state(self):
        commands = _workload(40)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]

        dsl = ShardedRedis(n_shards=2, seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, commands)

        sim = Simulator()
        direct = DirectShardedRedis(sim, n_shards=2)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, commands)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)

        dsl_state = [
            dsl.backend_app(i).payload.store.snapshot() for i in range(2)
        ]
        direct_state = [s.store.snapshot() for s in direct.servers]
        assert dsl_state == direct_state

    def test_dsl_run_is_deterministic(self):
        commands = _workload(15)
        runs = []
        for _ in range(2):
            svc = ShardedRedis(n_shards=2, seed=SEED)
            runs.append(_as_tuples(_drive_dsl(svc, commands)))
        assert runs[0] == runs[1]


class TestFailoverDifferential:
    def test_same_outputs_and_final_state(self):
        commands = _workload(10)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]

        dsl = FailoverRedis(seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, commands, step=3.0)

        sim = Simulator()
        direct = DirectFailoverRedis(sim, reregister_poll=None)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, commands)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)

        # every request ran on every warm replica in both arms
        dsl_state = [
            dsl.backend_app(i).payload.store.snapshot() for i in range(2)
        ]
        direct_state = [s.store.snapshot() for s in direct.servers]
        assert dsl_state[0] == dsl_state[1]
        assert direct_state[0] == direct_state[1]
        assert dsl_state == direct_state


class TestCachingDifferential:
    def test_same_outputs_hit_pattern_and_final_state(self):
        # heavy GET mix + small cache so evictions and hits both occur
        commands = _workload(60, get_ratio=0.7)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]

        dsl = CachedRedis(capacity=4, seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, commands)

        sim = Simulator()
        direct = DirectCachedRedis(sim, capacity=4)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, commands)

        # identical replies including the hit/miss flag of every GET
        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)
        assert dsl.cache.hits == direct.hits
        assert dsl.cache.misses == direct.misses
        assert dsl.server.store.snapshot() == direct.server.store.snapshot()


class TestMigrationDifferential:
    def _migrate(self, svc, settle):
        done = []
        svc.migrate("NodeB", done.append)
        settle()
        assert done == [True]

    def test_same_outputs_across_a_live_migration(self):
        commands = _workload(30)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]
        first, second = commands[:15], commands[15:]

        dsl = MigratableRedis(seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, first)
        self._migrate(dsl, lambda: dsl.system.run_until(dsl.system.now + 5.0))
        assert dsl.active == "NodeB"
        dsl_replies += _drive_dsl(dsl, second)

        sim = Simulator()
        direct = DirectMigratableRedis(sim)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, first)
        self._migrate(direct, sim.run)
        assert direct.active == "NodeB"
        direct_replies += _drive_direct(direct, sim, second)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)
        assert dsl.front.migrations == direct.migrations == 1
        # the migrated dataset matches: everything written pre-switch
        # moved to NodeB, and post-switch writes landed there too
        assert (
            dsl.node_server("NodeB").store.snapshot()
            == direct.node_server("NodeB").store.snapshot()
        )


class TestElasticDifferential:
    def _drive_dsl_jobs(self, svc, jobs):
        results = []
        for units in jobs:
            got = []
            svc.submit_job(units, got.append)
            svc.system.run_until(svc.system.now + 2.0)
            assert got, f"no result for job of {units} units"
            results.append(got[0])
        return results

    def _drive_direct_jobs(self, svc, sim, jobs):
        results = []
        for units in jobs:
            got = []
            svc.submit_job(units, got.append)
            sim.run()
            assert got, f"no result for job of {units} units"
            results.append(got[0])
        return results

    def test_same_placements_across_scale_out(self):
        rng = random.Random(SEED)
        jobs = [rng.randint(1, 5) for _ in range(8)]
        first, second = jobs[:4], jobs[4:]

        dsl = ElasticWorkers(seed=SEED)
        dsl_results = self._drive_dsl_jobs(dsl, first)
        scaled = []
        dsl.scale_out(scaled.append)
        dsl.system.run_until(dsl.system.now + 5.0)
        assert scaled == [True]
        dsl_results += self._drive_dsl_jobs(dsl, second)

        sim = Simulator()
        direct = DirectElasticWorkers(sim)
        direct_results = self._drive_direct_jobs(direct, sim, first)
        scaled = []
        direct.scale_out(scaled.append)
        sim.run()
        assert scaled == [True]
        direct_results += self._drive_direct_jobs(direct, sim, second)

        # same worker executed every job in both arms
        placements = [(r["worker"], r["units"]) for r in dsl_results]
        assert placements == [(r["worker"], r["units"]) for r in direct_results]
        assert dsl.active_workers == direct.active_workers
        # post-scale jobs actually reached the new worker
        assert any(w == "Wrk3" for w, _ in placements[4:])


class TestRemoteSnapshotDifferential:
    FILE = ("payload", 2_000_000)

    def _download(self, sim, hook, settle):
        server = FileServer(LinkModel(bandwidth=1_000_000_000, rtt=0.01))
        server.put(*self.FILE)
        client = TransferClient(sim, server)
        done = []
        client.download(
            self.FILE[0], done.append, audit=hook, audit_mode="continuous"
        )
        settle()
        assert done, "transfer did not complete"
        return done[0]

    def test_same_audit_trail(self):
        dsl = RemoteAuditor(placement="cross-vm", seed=SEED)
        dsl_result = self._download(
            dsl.sim,
            dsl.audit_hook(),
            lambda: dsl.system.run_until(dsl.system.now + 60.0),
        )

        sim = Simulator()
        direct = DirectRemoteAuditor(sim, placement="cross-vm")
        direct_result = self._download(sim, direct.audit_hook(), sim.run)

        # both arms audited the same milestones with the same digests
        assert dsl.audit_log == direct.audit_log
        assert len(dsl.audit_log) == dsl_result.audits > 0
        assert dsl_result.audits == direct_result.audits
        assert dsl.act.snapshots_sent == direct.snapshots_sent
        assert dsl.act.complaints == direct.complaints == 0
        # the final snapshot saw the whole file
        assert dsl.audit_log[-1]["done"] == self.FILE[1]


class TestCheckpointingDifferential:
    def test_same_recovered_state(self):
        writes = [Command("SET", f"k{i}", str(i).encode()) for i in range(12)]
        late = [Command("SET", "late", b"lost")]

        # DSL arm
        sim1 = Simulator()
        server1 = RedisServer()
        ref = {}
        dsl = CheckpointedService(
            server1, stall=lambda d: ref["p"].stall(d), sim=sim1
        )
        ref["p"] = DirectPort(sim1, server1)
        for cmd in writes:
            server1.execute(cmd, now=sim1.now)
        dsl.checkpoint_now()
        dsl.system.run_until(dsl.system.now + 2.0)
        for cmd in late:
            server1.execute(cmd, now=sim1.now)
        dsl.crash()
        dsl.system.run_until(dsl.system.now + 0.5)
        dsl.recover()
        dsl.system.run_until(dsl.system.now + 2.0)

        # direct arm
        sim2 = Simulator()
        server2 = RedisServer()
        direct = DirectCheckpointManager(sim2, server2, stall=lambda d: None)
        for cmd in writes:
            server2.execute(cmd, now=sim2.now)
        direct.checkpoint_now()
        sim2.run()
        for cmd in late:
            server2.execute(cmd, now=sim2.now)
        server2.store.flush()  # the crash
        ok = []
        direct.recover(ok.append)
        sim2.run()
        assert ok == [True]

        # both recover exactly the checkpointed 12 keys
        snap1 = server1.store.snapshot()
        snap2 = server2.store.snapshot()
        assert sorted(snap1["entries"]) == sorted(f"k{i}" for i in range(12))
        assert snap1 == snap2
