"""Differential tests: DSL architectures vs the direct (non-DSL)
control arm.

Table 2's claim is that both arms implement *the same feature*.  These
tests drive both implementations with the same deterministic workload
and require identical client outputs and identical final KV state —
for sharding, fail-over and checkpointing.

Requests are submitted sequentially (each reply collected before the
next submit) so the comparison is schedule-independent.
"""

from repro.arch.checkpointing import CheckpointedService
from repro.arch.failover import FailoverRedis
from repro.arch.sharding import ShardedRedis
from repro.direct import (
    DirectCheckpointManager,
    DirectFailoverRedis,
    DirectShardedRedis,
)
from repro.redislite import Command, RedisServer, WorkloadGenerator
from repro.redislite.bench import DirectPort
from repro.runtime.sim import Simulator

SEED = 7


def _workload(n, *, get_ratio=0.5):
    gen = WorkloadGenerator(seed=SEED, n_keys=16, get_ratio=get_ratio)
    return list(gen.commands(n))


def _drive_dsl(svc, commands, step=2.0):
    """Submit sequentially against a DSL service, one reply at a time."""
    replies = []
    for cmd in commands:
        got = []
        svc.submit(cmd, got.append)
        svc.system.run_until(svc.system.now + step)
        assert got, f"no reply for {cmd}"
        replies.append(got[0])
    return replies


def _drive_direct(svc, sim, commands):
    replies = []
    for cmd in commands:
        got = []
        svc.submit(cmd, got.append)
        sim.run()
        assert got, f"no reply for {cmd}"
        replies.append(got[0])
    return replies


def _as_tuples(replies):
    return [(r.ok, r.value, r.hit) for r in replies]


class TestShardingDifferential:
    def test_same_outputs_and_final_state(self):
        commands = _workload(40)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]

        dsl = ShardedRedis(n_shards=2, seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, commands)

        sim = Simulator()
        direct = DirectShardedRedis(sim, n_shards=2)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, commands)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)

        dsl_state = [
            dsl.backend_app(i).payload.store.snapshot() for i in range(2)
        ]
        direct_state = [s.store.snapshot() for s in direct.servers]
        assert dsl_state == direct_state

    def test_dsl_run_is_deterministic(self):
        commands = _workload(15)
        runs = []
        for _ in range(2):
            svc = ShardedRedis(n_shards=2, seed=SEED)
            runs.append(_as_tuples(_drive_dsl(svc, commands)))
        assert runs[0] == runs[1]


class TestFailoverDifferential:
    def test_same_outputs_and_final_state(self):
        commands = _workload(10)
        preload = [Command("SET", f"key:{i:08d}", b"seed") for i in range(16)]

        dsl = FailoverRedis(seed=SEED)
        dsl.preload(preload)
        dsl_replies = _drive_dsl(dsl, commands, step=3.0)

        sim = Simulator()
        direct = DirectFailoverRedis(sim, reregister_poll=None)
        direct.preload(preload)
        direct_replies = _drive_direct(direct, sim, commands)

        assert _as_tuples(dsl_replies) == _as_tuples(direct_replies)

        # every request ran on every warm replica in both arms
        dsl_state = [
            dsl.backend_app(i).payload.store.snapshot() for i in range(2)
        ]
        direct_state = [s.store.snapshot() for s in direct.servers]
        assert dsl_state[0] == dsl_state[1]
        assert direct_state[0] == direct_state[1]
        assert dsl_state == direct_state


class TestCheckpointingDifferential:
    def test_same_recovered_state(self):
        writes = [Command("SET", f"k{i}", str(i).encode()) for i in range(12)]
        late = [Command("SET", "late", b"lost")]

        # DSL arm
        sim1 = Simulator()
        server1 = RedisServer()
        ref = {}
        dsl = CheckpointedService(
            server1, stall=lambda d: ref["p"].stall(d), sim=sim1
        )
        ref["p"] = DirectPort(sim1, server1)
        for cmd in writes:
            server1.execute(cmd, now=sim1.now)
        dsl.checkpoint_now()
        dsl.system.run_until(dsl.system.now + 2.0)
        for cmd in late:
            server1.execute(cmd, now=sim1.now)
        dsl.crash()
        dsl.system.run_until(dsl.system.now + 0.5)
        dsl.recover()
        dsl.system.run_until(dsl.system.now + 2.0)

        # direct arm
        sim2 = Simulator()
        server2 = RedisServer()
        direct = DirectCheckpointManager(sim2, server2, stall=lambda d: None)
        for cmd in writes:
            server2.execute(cmd, now=sim2.now)
        direct.checkpoint_now()
        sim2.run()
        for cmd in late:
            server2.execute(cmd, now=sim2.now)
        server2.store.flush()  # the crash
        ok = []
        direct.recover(ok.append)
        sim2.run()
        assert ok == [True]

        # both recover exactly the checkpointed 12 keys
        snap1 = server1.store.snapshot()
        snap2 = server2.store.snapshot()
        assert sorted(snap1["entries"]) == sorted(f"k{i}" for i in range(12))
        assert snap1 == snap2
