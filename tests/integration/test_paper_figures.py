"""End-to-end integration tests: each paper experiment's *shape* at
small scale (the full-scale versions live in benchmarks/)."""

import pytest

from repro.arch.caching import CachedRedis
from repro.arch.checkpointing import CheckpointedService
from repro.arch.sharding import ShardedRedis, ShardedSuricata
from repro.arch.snapshot import RemoteAuditor
from repro.curlite import FileServer, run_sweep
from repro.redislite import (
    BenchDriver,
    DirectPort,
    RedisServer,
    WorkloadGenerator,
    djb2,
)
from repro.runtime.sim import Simulator
from repro.suricatalite import TraceGenerator


class TestFig23aCheckpointShape:
    def test_dips_at_checkpoints_and_crash(self):
        sim = Simulator()
        server = RedisServer()
        ref = {}
        svc = CheckpointedService(server, stall=lambda d: ref["p"].stall(d), sim=sim)
        port = ref["p"] = DirectPort(sim, server)
        wl = WorkloadGenerator(n_keys=2000, get_ratio=0.7, seed=20)
        for cmd in wl.preload_commands():
            server.execute(cmd)
        svc.schedule_checkpoints(interval=5.0, until=20.0)
        sim.call_at(12.0, lambda: (svc.crash(), port.stall(0.5)))
        sim.call_at(12.5, svc.recover)
        res = BenchDriver(sim, port, wl, clients=8).run(20.0)
        series = dict(res.qps_series(1.0))
        steady = series[2.0]
        assert series[5.0] < steady          # checkpoint dip
        assert series[12.0] < series[5.0]    # crash dip is deeper
        assert series[17.0] == pytest.approx(steady, rel=0.05)  # recovered
        assert svc.restores == 1


class TestFig23bShardByKey:
    def test_cumulative_ratios_match_workload(self):
        svc = ShardedRedis(n_shards=4)
        wl = WorkloadGenerator(n_keys=400, seed=21, shard_weights=(4, 2, 1, 1))
        svc.preload(wl.preload_commands())
        res = BenchDriver(svc.sim, svc, wl, clients=4).run(2.0)
        data = res.cumulative_by(lambda c: djb2(c.key) % 4)
        finals = {cls: s[-1] for cls, s in data["series"].items()}
        # the uneven workload's 4:2:1:1 pressure shows in the ratios
        assert finals[0] > 1.5 * finals[1] > 2.0 * finals[2]
        assert abs(finals[2] - finals[3]) < 0.35 * finals[2] + 30


class TestFig23cCachingGain:
    def test_caching_beats_no_caching_under_skew(self):
        results = {}
        for label, capacity in (("with", 150), ("without", 0)):
            svc = CachedRedis(capacity=max(1, capacity))
            if capacity == 0:
                svc.cache.capacity = 0  # effectively disabled
            wl = WorkloadGenerator(n_keys=1000, get_ratio=0.9, skew=(0.1, 0.9), seed=22)
            svc.preload(wl.preload_commands())
            res = BenchDriver(svc.sim, svc, wl, clients=4).run(2.0)
            results[label] = res.count
        assert results["with"] > results["without"] * 1.02


class TestFig24SuricataShard:
    def test_5tuple_steering_uneven_but_complete(self):
        svc = ShardedSuricata(n_shards=4, batch_size=100)
        gen = TraceGenerator(n_flows=80, packets_per_second=2000, duration=5, seed=23)
        for pkt in gen.packets():
            svc.feed(pkt)
        svc.flush_all()
        svc.system.run_until(svc.system.now + 20.0)
        done = sum(n for _, _, n in svc.packets_done)
        assert done == 10_000
        per_shard = [0, 0, 0, 0]
        for _, s, n in svc.packets_done:
            per_shard[s] += n
        assert max(per_shard) > 1.5 * min(per_shard)  # the Fig 24b steps
        assert svc.system.failures == []

    def test_checkpointing_reused_for_suricata(self):
        from repro.suricatalite import Pipeline

        sim = Simulator()
        pipeline = Pipeline()
        stalls = []
        svc = CheckpointedService(pipeline, stall=stalls.append, sim=sim)
        for pkt in TraceGenerator(seed=24).packets(500):
            pipeline.process(pkt)
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.aud.snapshots_stored == 1
        assert stalls[0] > 0


class TestFig25CurlOverhead:
    def test_placement_and_size_shape(self):
        sim = Simulator()
        server = FileServer()
        server.put_standard_corpus()
        same = RemoteAuditor(placement="same-vm", sim=sim)
        cross = RemoteAuditor(placement="cross-vm", sim=sim)
        res = run_sweep(
            sim, server, [10_000, 100_000_000],
            {
                "original": ("none", None),
                "same-vm": ("continuous", same.audit_hook()),
                "cross-vm": ("continuous", cross.audit_hook()),
            },
            repetitions=3,
        )
        small, large = 10_000, 100_000_000
        # cross-VM costs more than same-VM
        assert res.mean(small, "cross-vm") > res.mean(small, "same-vm")
        # relative overhead shrinks for large files
        assert res.overhead_percent(large, "cross-vm") < res.overhead_percent(
            small, "cross-vm"
        )
        # every audited run is slower than the original
        for cfg in ("same-vm", "cross-vm"):
            assert res.mean(small, cfg) >= res.mean(small, "original")


class TestFig25cLatencyRanking:
    def test_sharded_latency_above_baseline(self):
        # baseline
        sim = Simulator()
        server = RedisServer()
        port = DirectPort(sim, server)
        wl = WorkloadGenerator(n_keys=300, get_ratio=1.0, seed=25)
        for cmd in wl.preload_commands():
            server.execute(cmd)
        base = BenchDriver(sim, port, wl, clients=1).run(1.0)

        svc = ShardedRedis(n_shards=4)
        wl2 = WorkloadGenerator(n_keys=300, get_ratio=1.0, seed=25)
        svc.preload(wl2.preload_commands())
        shard = BenchDriver(svc.sim, svc, wl2, clients=1).run(1.0)

        # the DSL layer adds visible but bounded latency (Fig 25c:
        # "noticeable but low")
        assert shard.mean_latency("GET") > base.mean_latency("GET")
        assert shard.percentile(0.5, "GET") < 50 * base.percentile(0.5, "GET")
