"""Engine seam unit tests: selection, capability guards, the realtime
clock/executor, and the TCP wire codec."""

import threading

import pytest

from repro.runtime import RealtimeEngine, SimEngine, create_engine, default_engine
from repro.runtime.channels import Message
from repro.runtime.engine import use_controller
from repro.runtime.kvtable import Update
from repro.runtime.realtime import RealtimeClock
from repro.runtime.sim import Simulator
from repro.runtime.wire import decode_message, encode_message
from repro.serde.framing import SavedData

from ..runtime.helpers import failures_of, single_junction

# compress logical time hard: these tests run logical seconds in
# milliseconds of wall time
SCALE = 0.002


class TestSelection:
    def test_create_engine_names(self):
        assert create_engine("sim").name == "sim"
        rt = create_engine("realtime", time_scale=SCALE)
        assert rt.name == "realtime" and rt.transport.inproc
        rt.close()
        tcp = create_engine("realtime-tcp", time_scale=SCALE)
        assert tcp.name == "realtime-tcp" and not tcp.transport.inproc
        tcp.close()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("quantum")

    def test_string_spec_on_system(self):
        sys_ = single_junction("skip", engine="sim")
        assert sys_.engine.name == "sim"
        assert isinstance(sys_.engine, SimEngine)

    def test_engine_and_sim_are_exclusive(self):
        with pytest.warns(DeprecationWarning, match="System\\(sim=...\\) is deprecated"):
            with pytest.raises(ValueError, match="not both"):
                single_junction("skip", engine=SimEngine(), sim=Simulator())

    def test_shared_sim_still_means_sim_engine(self):
        sim = Simulator()
        with pytest.warns(DeprecationWarning, match="System\\(sim=...\\) is deprecated"):
            sys_ = single_junction("skip", sim=sim)
        assert sys_.engine.name == "sim"
        assert sys_.sim is sim and sys_.clock is sim

    def test_default_engine_scope(self):
        with default_engine(lambda: RealtimeEngine(time_scale=SCALE)):
            sys_ = single_junction("skip")
        assert sys_.engine.name == "realtime"
        sys_.shutdown()
        # the scope is gone: new systems default to sim again
        assert single_junction("skip").engine.name == "sim"

    def test_controller_requires_sim_engine(self):
        with use_controller(lambda: None):
            with pytest.raises(ValueError, match="controlled scheduling"):
                single_junction("skip", engine=RealtimeEngine(time_scale=SCALE))

    def test_metrics_carry_engine_label(self):
        sys_ = single_junction("skip")
        sys_.start()
        sys_.run_until(1.0)
        snap = sys_.telemetry.metrics.snapshot()
        assert any("engine=sim" in labels for fam in snap.values() for labels in fam)


class TestRealtimeClock:
    def test_timers_fire_in_logical_order(self):
        clock = RealtimeClock(time_scale=SCALE)
        fired = []
        clock.call_after(0.5, lambda: fired.append("late"))
        clock.call_after(0.1, lambda: fired.append("early"))
        assert clock.pending_events() == 2
        clock.run_until(1.0)
        assert fired == ["early", "late"]
        assert clock.pending_events() == 0
        assert clock.now >= 1.0  # run_until floors logical now
        clock.close()

    def test_cancel_removes_pending(self):
        clock = RealtimeClock(time_scale=SCALE)
        fired = []
        h = clock.call_after(0.2, lambda: fired.append("x"))
        assert not h.cancelled and clock.pending_events() == 1
        h.cancel()
        assert h.cancelled and clock.pending_events() == 0
        clock.run_until(1.0)
        assert fired == []
        clock.close()

    def test_past_deadline_fires_immediately(self):
        clock = RealtimeClock(time_scale=SCALE)
        fired = []
        clock.run_until(5.0)
        clock.call_at(1.0, lambda: fired.append("past"))
        clock.run_until(5.1)
        assert fired == ["past"]
        clock.close()

    def test_zero_delay_cascades_settle(self):
        clock = RealtimeClock(time_scale=SCALE)
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                clock.call_after(0.0, lambda: chain(n + 1))

        clock.call_after(0.0, lambda: chain(0))
        clock.run_until(0.5)
        assert fired == [0, 1, 2, 3, 4, 5]
        clock.close()

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ValueError):
            RealtimeClock(time_scale=0.0)


class TestThreadPoolHost:
    def test_host_runs_off_thread_and_writes_apply(self):
        seen = {}

        def h(ctx):
            seen["thread"] = threading.current_thread().name
            ctx.set("P", True)

        sys_ = single_junction(
            "host H {P}", decls="| init prop !P",
            engine=RealtimeEngine(time_scale=SCALE),
        )
        sys_.bind_host("T", "H", h)
        sys_.start()
        sys_.run_until(5.0)
        assert seen["thread"].startswith("csaw-host")
        assert sys_.read_state("x", "P") is True
        assert failures_of(sys_) == []
        sys_.shutdown()

    def test_deferred_writes_read_back_inside_the_block(self):
        seen = []

        def h(ctx):
            ctx.set("P", True)
            seen.append(ctx.get("P"))  # overlay: own write visible

        sys_ = single_junction(
            "host H {P}", decls="| init prop !P",
            engine=RealtimeEngine(time_scale=SCALE),
        )
        sys_.bind_host("T", "H", h)
        sys_.start()
        sys_.run_until(5.0)
        assert seen == [True]
        sys_.shutdown()

    def test_host_exception_surfaces_as_failure(self):
        sys_ = single_junction(
            "host H", engine=RealtimeEngine(time_scale=SCALE)
        )
        sys_.bind_host("T", "H", lambda ctx: 1 / 0)
        sys_.start()
        sys_.run_until(5.0)
        assert "HostError" in failures_of(sys_)
        sys_.shutdown()

    def test_host_take_still_advances_logical_time(self):
        times = []

        def h(ctx):
            ctx.take(0.5)

        sys_ = single_junction(
            "host H; host After", engine=RealtimeEngine(time_scale=SCALE)
        )
        sys_.bind_host("T", "H", h)
        sys_.bind_host("T", "After", lambda ctx: times.append(ctx.now))
        sys_.start()
        sys_.run_until(5.0)
        assert times and times[0] >= 0.5
        sys_.shutdown()


class TestWireCodec:
    def test_update_round_trip(self):
        m = Message(
            src="a::j", dst="b::j", kind="update",
            payload=Update(key="K[i]", value=True, src="a::j"), msg_id=41,
        )
        out = decode_message(encode_message(m))
        assert (out.src, out.dst, out.kind, out.msg_id) == (m.src, m.dst, m.kind, m.msg_id)
        assert isinstance(out.payload, Update)
        assert (out.payload.key, out.payload.value, out.payload.src) == ("K[i]", True, "a::j")

    def test_saved_data_round_trip(self):
        sd = SavedData("Snap", b"\x00\x01 blob \xff")
        m = Message(
            src="a::j", dst="b::j", kind="update",
            payload=Update(key="d", value=sd, src="a::j"), msg_id=7,
        )
        out = decode_message(encode_message(m))
        assert isinstance(out.payload.value, SavedData)
        assert out.payload.value.schema == "Snap"
        assert out.payload.value.blob == sd.blob

    def test_ack_round_trip(self):
        m = Message(src="b::j", dst="a::j", kind="ack", payload=17, msg_id=17)
        out = decode_message(encode_message(m))
        assert out.kind == "ack" and out.payload == 17


class TestQuiescence:
    def test_run_drains_to_quiescence(self):
        fired = []
        eng = RealtimeEngine(time_scale=SCALE)
        eng.clock.call_after(0.3, lambda: fired.append("a"))
        eng.clock.call_after(0.6, lambda: fired.append("b"))
        eng.run()
        assert fired == ["a", "b"]
        assert eng.pending_work() == 0
        eng.close()

    def test_close_is_idempotent(self):
        eng = RealtimeEngine(time_scale=SCALE)
        eng.close()
        eng.close()
