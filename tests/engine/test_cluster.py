"""Cluster engine tests: real worker processes, crash supervision,
heartbeats, restart-with-backoff, and backend parity with the sim.

Wall-clock costs are kept low with aggressive time compression, but
every test here spawns *real* OS processes and kills some of them —
the supervision machinery under test is the real thing, not a mock.
"""

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.redislite import Command
from repro.arch.failover import FailoverRedis
from repro.core.errors import StartStopFailure
from repro.runtime import ChaosConfig, ChaosEngine, FaultPlan, default_engine
from repro.runtime.cluster import ClusterEngine, ClusterSupervisor, live_worker_pgids
from repro.runtime.engine import ENGINE_NAMES, create_engine
from repro.runtime.supervisor import Backoff, BackoffPolicy, WorkerState
from repro.runtime import cluster_worker
from repro.runtime.wire import LEN_PREFIX, MAX_FRAME_LEN

from ..runtime.helpers import single_junction
from .test_parity import SCALE, final_state, observable, sim_run

#: logical-seconds supervision knobs shared by the tests: generous
#: enough that CI scheduling jitter cannot produce false positives
HB = dict(heartbeat_interval=0.5, heartbeat_timeout=2.0)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


# ---------------------------------------------------------------------------
# Protocol / policy units
# ---------------------------------------------------------------------------


class TestWorkerProtocol:
    def test_frame_constants_match_wire(self):
        # cluster_worker.py duplicates the wire constants to stay
        # stdlib-only; they must never drift apart
        assert cluster_worker.LEN_PREFIX.format == LEN_PREFIX.format
        assert cluster_worker.LEN_PREFIX.size == LEN_PREFIX.size
        assert cluster_worker.MAX_FRAME_LEN == MAX_FRAME_LEN

    def test_worker_rejects_oversized_frame(self):
        # a hostile coordinator cannot make the worker allocate: the
        # length check precedes the body read and exits with code 2
        import socket

        srv = socket.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        port = srv.getsockname()[1]
        proc = subprocess.Popen(
            [sys.executable, cluster_worker.__file__,
             "--connect", f"127.0.0.1:{port}", "--name", "w"],
            stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL,
        )
        try:
            conn, _ = srv.accept()
            hello = cluster_worker.recv_frame(conn)
            assert hello == cluster_worker.OP_HELLO + b"w"
            conn.sendall(LEN_PREFIX.pack(MAX_FRAME_LEN + 1))
            assert proc.wait(timeout=10) == 2
        finally:
            proc.kill()
            proc.wait()
            srv.close()


class TestBackoffPolicy:
    def test_exponential_with_cap(self):
        pol = BackoffPolicy(base=0.5, factor=2.0, cap=3.0, jitter=0.0)
        rng = random.Random(0)
        assert [pol.delay(n, rng) for n in range(5)] == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_jitter_bounded(self):
        pol = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.5)
        rng = random.Random(7)
        for n in range(50):
            assert 1.0 <= pol.delay(n, rng) <= 1.5

    def test_budget_exhaustion_and_reset(self):
        b = Backoff(BackoffPolicy(base=1.0, jitter=0.0, max_restarts=2), random.Random(0))
        assert b.next_delay() == 1.0
        assert b.next_delay() == 2.0
        assert b.next_delay() is None  # budget spent
        b.reset()
        assert b.next_delay() == 1.0  # stability resets the ladder

    def test_group_assignment(self):
        insts = ["c", "a", "b"]
        assert ClusterSupervisor.assign_groups(insts, None) == [
            ("a", ("a",)), ("b", ("b",)), ("c", ("c",))
        ]
        assert ClusterSupervisor.assign_groups(insts, 2) == [
            ("w0", ("a", "c")), ("w1", ("b",))
        ]
        assert ClusterSupervisor.assign_groups(insts, 5) == [
            ("a", ("a",)), ("b", ("b",)), ("c", ("c",))
        ]
        with pytest.raises(ValueError):
            ClusterSupervisor.assign_groups(insts, 0)

    def test_bad_heartbeat_config_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ClusterEngine(time_scale=SCALE, heartbeat_interval=1.0,
                          heartbeat_timeout=0.5).close()


# ---------------------------------------------------------------------------
# Deployment
# ---------------------------------------------------------------------------


class TestDeployment:
    def test_engine_registered(self):
        assert "cluster" in ENGINE_NAMES
        eng = create_engine("cluster", time_scale=SCALE, **HB)
        assert isinstance(eng, ClusterEngine) and eng.name == "cluster"
        eng.close()

    def test_one_process_per_instance(self):
        eng = ClusterEngine(time_scale=SCALE, **HB)
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        status = eng.supervisor.status()
        assert set(status) == {"x"}
        pid = status["x"]["pid"]
        assert pid is not None and pid != os.getpid() and _alive(pid)
        assert pid in live_worker_pgids()
        eng.close()
        assert not _alive(pid)
        assert pid not in live_worker_pgids()

    def test_sharded_workers(self):
        with default_engine(lambda: ClusterEngine(time_scale=SCALE, workers=2, **HB)):
            svc = FailoverRedis(timeout=2.0, seed=0)
        eng = svc.system.engine
        status = eng.supervisor.status()
        assert set(status) == {"w0", "w1"}
        hosted = sorted(i for st in status.values() for i in st["instances"])
        assert hosted == sorted(svc.system.instances)
        pids = {st["pid"] for st in status.values()}
        assert len(pids) == 2
        svc.system.run_until(svc.system.now + 3.0)
        assert not svc.system.failures
        svc.system.shutdown()

    def test_close_is_idempotent(self):
        eng = ClusterEngine(time_scale=SCALE, **HB)
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(0.5)
        eng.close()
        eng.close()


# ---------------------------------------------------------------------------
# Parity with the sim engine
# ---------------------------------------------------------------------------


class TestParity:
    def test_sharding_state_parity(self):
        # strict tier: the same seeded workload through real worker
        # processes lands in the same final KV state as the sim
        from repro.explore.scenarios import arch_scenario

        sim_state, _, sim_obs, sim_failures = sim_run("sharding")
        with default_engine(lambda: ClusterEngine(time_scale=SCALE, **HB)):
            sc = arch_scenario("sharding")
            system = sc.run()
        assert len(system.failures) == sim_failures == 0
        assert final_state(system) == sim_state
        assert observable(sc.observe(system)) == sim_obs
        system.shutdown()


# ---------------------------------------------------------------------------
# Crash supervision
# ---------------------------------------------------------------------------

#: deterministic restart schedule for the failover drills: first retry
#: 12 logical seconds after detection, no jitter.  The delay is chosen
#: so every client op completes *before* the restarted replica can
#: re-register — a fresh b1 rejoining mid-workload would race its empty
#: replies against b2's, and the two arms restart a couple of logical
#: seconds apart (worker spawn consumes wall time the cluster clock
#: also counts)
DRILL_BACKOFF = BackoffPolicy(base=12.0, jitter=0.0)

#: the client workload both failover arms run: two ops before the
#: fault, three during the backoff window (degraded mode), matching the
#: exploration scenario's shape
DRILL_OPS = (
    ("SET", "a", b"1"),
    ("SET", "b", b"x"),
    ("SET", "a", b"2"),
    ("GET", "a", None),
    ("GET", "b", None),
)


def _drive_failover(svc, *, kill_after_op=2, kill=None):
    """Run DRILL_OPS with 2-logical-second gaps, invoking ``kill``
    after ``kill_after_op`` completed ops; returns the client history."""
    history = []
    clock = svc.system.clock

    def submit(kind, key, value):
        cmd = Command(kind, key, value) if kind == "SET" else Command(kind, key)
        svc.submit(
            cmd,
            lambda r, k=kind, ky=key, v=value: history.append(
                (k, ky, v if k == "SET" else r.value, bool(r.ok))
            ),
        )

    for i, (kind, key, value) in enumerate(DRILL_OPS):
        if i == kill_after_op and kill is not None:
            kill()
            svc.system.run_until(clock.now + 2.0)
        submit(kind, key, value)
        svc.system.run_until(clock.now + 2.0)
    svc.system.run_until(clock.now + 25.0)  # backoff + restart + settle
    return history


class TestCrashSupervision:
    def test_sigkill_failover_parity_with_sim(self):
        """The acceptance drill: SIGKILL one replica's worker mid-load.
        The surviving replica keeps serving (degraded mode), the
        supervisor restarts the worker after backoff, and the client
        history matches a sim run with the equivalent simulated fault."""
        # sim arm: simulated crash + scheduled restart at the same
        # logical offsets the supervisor will produce
        svc_sim = FailoverRedis(timeout=2.0, seed=0)
        plan = FaultPlan(svc_sim.system)

        def sim_kill():
            plan.crash("b1")
            plan.restart_at(svc_sim.system.now + 12.0, "b1")

        sim_hist = _drive_failover(svc_sim, kill=sim_kill)
        assert svc_sim.system.instances["b1"].alive

        # cluster arm: a real SIGKILL, recovered by the supervisor
        with default_engine(
            lambda: ClusterEngine(time_scale=SCALE, backoff=DRILL_BACKOFF, **HB)
        ):
            svc = FailoverRedis(timeout=2.0, seed=0)
        sup = svc.system.engine.supervisor
        cl_hist = _drive_failover(svc, kill=lambda: sup.kill("b1"))

        st = sup.statuses["b1"]
        assert st.state is WorkerState.RUNNING and st.crashes == 1 and st.restarts == 1
        assert svc.system.instances["b1"].alive
        assert sup.report().recovered()
        assert not svc.system.failures and not svc_sim.system.failures
        # observable parity: client-visible results match the sim run
        assert cl_hist == sim_hist
        assert [ok for (_, _, _, ok) in cl_hist] == [True] * len(DRILL_OPS)
        svc.system.shutdown()

    def test_worker_kill_crashes_instance_immediately(self):
        eng = ClusterEngine(
            time_scale=SCALE, backoff=BackoffPolicy(base=2.0, jitter=0.0), **HB
        )
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        old_pid = eng.supervisor.worker_pid("x")
        eng.supervisor.kill("x")
        eng.run_until(eng.clock.now + 3.0)
        # EOF detection: the instance is down well before any heartbeat
        # timeout could have fired
        assert sys_.instances["x"].crashed
        assert eng.supervisor.statuses["x"].last_crash_reason in (
            "connection lost", "process exit (code -9)",
        )
        assert eng.supervisor.degraded
        eng.run_until(eng.clock.now + 12.0)  # backoff 2.0 + spawn + handshake
        assert sys_.instances["x"].alive
        assert eng.supervisor.worker_pid("x") != old_pid
        assert not eng.supervisor.degraded
        eng.close()

    def test_heartbeat_detects_wedged_worker(self):
        # SIGSTOP wedges the process without killing it: the socket
        # stays open, so only the heartbeat timeout can catch this
        eng = ClusterEngine(
            time_scale=SCALE, backoff=BackoffPolicy(base=1.0, jitter=0.0), **HB
        )
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        os.killpg(eng.supervisor.worker_pid("x"), signal.SIGSTOP)
        eng.run_until(eng.clock.now + 12.0)
        st = eng.supervisor.statuses["x"]
        assert st.heartbeat_timeouts >= 1
        assert st.last_crash_reason == "missed heartbeats"
        assert st.state is WorkerState.RUNNING and st.restarts >= 1
        eng.close()

    def test_restart_budget_exhaustion_fails_worker(self):
        eng = ClusterEngine(
            time_scale=SCALE,
            backoff=BackoffPolicy(base=0.5, jitter=0.0, max_restarts=0),
            **HB,
        )
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        eng.supervisor.kill("x")
        eng.run_until(eng.clock.now + 6.0)
        st = eng.supervisor.statuses["x"]
        assert st.state is WorkerState.FAILED
        assert sys_.instances["x"].crashed  # stays down: budget spent
        assert eng.supervisor.degraded
        assert not eng.supervisor.report().recovered()
        eng.close()

    def test_architecture_revival_wins_restart_race(self):
        # if the architecture restarts the instance before the worker
        # handshake completes, restart_instance raises and the
        # supervisor must yield rather than crash
        eng = ClusterEngine(time_scale=SCALE, backoff=DRILL_BACKOFF, **HB)
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        eng.supervisor.kill("x")
        eng.run_until(eng.clock.now + 3.0)
        assert sys_.instances["x"].crashed
        sys_.restart_instance("x")  # the architecture revives it first
        eng.run_until(eng.clock.now + 16.0)
        assert sys_.instances["x"].alive
        assert eng.supervisor.statuses["x"].state is WorkerState.RUNNING
        eng.close()

    def test_scheduled_fault_drills(self):
        eng = ClusterEngine(
            time_scale=SCALE, backoff=DRILL_BACKOFF, drills=[(2.0, "x")], **HB
        )
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(25.0)
        st = eng.supervisor.statuses["x"]
        assert st.crashes == 1 and st.restarts == 1
        assert st.state is WorkerState.RUNNING
        eng.close()


# ---------------------------------------------------------------------------
# Fault-plan / chaos integration
# ---------------------------------------------------------------------------


class TestFaultSurface:
    def test_kill_process_on_cluster_uses_supervisor(self):
        eng = ClusterEngine(time_scale=SCALE, backoff=DRILL_BACKOFF, **HB)
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        plan = FaultPlan(sys_)
        plan.kill_process("x")
        eng.run_until(eng.clock.now + 3.0)
        assert sys_.instances["x"].crashed
        assert eng.supervisor.statuses["x"].crashes == 1
        assert any(k == "kill_process" for (_, k, _) in plan.injected)
        eng.close()

    def test_kill_process_degrades_to_crash_on_sim(self):
        sys_ = single_junction("skip")
        sys_.start()
        sys_.run_until(1.0)
        plan = FaultPlan(sys_)
        plan.kill_process("x")
        assert sys_.instances["x"].crashed
        detail = next(d for (_, k, d) in plan.injected if k == "kill_process")
        assert "no supervisor" in detail
        sys_.restart_instance("x")
        assert sys_.instances["x"].alive
        with pytest.raises(StartStopFailure):
            sys_.restart_instance("x")  # not crashed any more

    def test_chaos_schedules_process_kills(self):
        sys_ = single_junction("skip")
        sys_.start()
        chaos = ChaosEngine(
            sys_, seed=3,
            config=ChaosConfig(horizon=10.0, crash_storms=0, process_kills=2,
                               link_flaps=0, loss_bursts=0),
        )
        events = chaos.schedule(kills=["x"])
        kills = [e for e in events if e[1] == "kill_process"]
        restarts = [e for e in events if e[1] == "restart"]
        # unsupervised engine: each kill degrades to crash + restart
        assert len(kills) == 2 and len(restarts) == 2
        sys_.run_until(12.0)
        assert sys_.instances["x"].alive
        assert not sys_.failures

    def test_chaos_leaves_recovery_to_supervisor_on_cluster(self):
        eng = ClusterEngine(
            time_scale=SCALE, backoff=BackoffPolicy(base=0.5, jitter=0.0), **HB
        )
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        chaos = ChaosEngine(
            sys_, seed=3,
            config=ChaosConfig(horizon=6.0, crash_storms=0, process_kills=1,
                               link_flaps=0, loss_bursts=0),
        )
        events = chaos.schedule(kills=["x"])
        assert [e[1] for e in events] == ["kill_process"]  # no paired restart
        eng.run_until(20.0)
        assert sys_.instances["x"].alive  # the supervisor recovered it
        assert eng.supervisor.statuses["x"].restarts >= 1
        eng.close()


# ---------------------------------------------------------------------------
# Drain / shutdown
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_stops_workers_cleanly(self):
        eng = ClusterEngine(time_scale=SCALE, **HB)
        sys_ = single_junction("skip", engine=eng)
        sys_.start()
        eng.run_until(1.0)
        pid = eng.supervisor.worker_pid("x")
        assert eng.drain(grace=2.0) is True
        assert eng.supervisor.statuses["x"].state is WorkerState.STOPPED
        assert not _alive(pid)
        eng.close()

    def test_repro_run_realtime_sigterm_drains(self):
        # the graceful-shutdown satellite, end to end: SIGTERM a live
        # `repro run --engine realtime` and expect a drained summary
        # and exit code 0 instead of a mid-write death
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "failover",
             "--engine", "realtime", "--time-scale", "1.0", "--until", "300"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            time.sleep(3.0)  # mid-workload (horizon is 300 logical s)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, out
        assert "drained=clean" in out
        assert "engine=realtime" in out

    def test_repro_cluster_cli_fault_drill(self):
        # the CLI drill the cluster-smoke CI job runs, in-process
        from repro.cli import main

        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            # 20x compression (not 50x): the first op's cold-start wall
            # latency through the double-socket relay must stay inside
            # the failover timeout budget
            rc = main([
                "cluster", "failover", "--time-scale", "0.05",
                "--kill", "b1", "--kill-at", "4", "--until", "20",
            ])
        out = buf.getvalue()
        assert rc == 0, out
        assert "recovered=True" in out
        assert "crashes=1" in out
