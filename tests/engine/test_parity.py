"""Backend parity: the same seeded workload through the sim engine and
the realtime engine must land in the same place.

Two tiers, matched to what each architecture can promise on a wall
clock:

* **strict parity** — equal final KV state (per junction, SavedData
  normalized to ``(schema, blob)``) *and* an equal multiset of applied
  updates (``apply`` telemetry events) — holds for the architectures
  whose behaviour depends only on message causality, not on timer
  races: sharding, caching, checkpointing, elastic, remote_snapshot,
  migration.
* **observable parity** — equal client-visible results (the scenario's
  operation history) and zero failures — for the architectures whose
  *internal* traffic is timing-sensitive (parallel_sharding races its
  backends on purpose; failover's activation hinges on a 0.5-logical-
  second timeout that wall-clock jitter can shift), where byte-equal
  internals are not a meaningful promise.

Every workload comes from :mod:`repro.explore.scenarios`, so the drive
is identical across engines by construction.
"""

import functools
from collections import Counter

import pytest

from repro.explore.scenarios import arch_scenario
from repro.runtime import RealtimeEngine, default_engine
from repro.serde.framing import SavedData

#: wall seconds per logical second — 50x compression keeps a 20-30s
#: logical workload under a second of wall time
SCALE = 0.02

STRICT = ("sharding", "caching", "checkpointing", "elastic", "remote_snapshot", "migration")
OBSERVABLE = ("failover", "parallel_sharding")


def _norm(v):
    return ("saved", v.schema, v.blob) if isinstance(v, SavedData) else v


def final_state(system):
    out = {}
    for inst in system.instances.values():
        for jr in inst.junctions.values():
            for k, v in jr.table.values.items():
                out[(jr.node, k)] = _norm(v)
    return out


def applied_updates(system):
    """Multiset of (node, key) over every applied remote update."""
    return Counter(
        (e.node, e.attrs.get("key"))
        for e in system.telemetry.events
        if e.kind == "apply"
    )


def observable(obs):
    hist = obs.get("history")
    if hist is None:
        return obs
    return [(op.kind, op.key, op.value, op.ok) for op in hist]


@functools.lru_cache(maxsize=None)
def sim_run(name):
    sc = arch_scenario(name)
    system = sc.run()
    return final_state(system), applied_updates(system), observable(sc.observe(system)), len(system.failures)


def realtime_run(name, transport):
    with default_engine(lambda: RealtimeEngine(time_scale=SCALE, transport=transport)):
        sc = arch_scenario(name)
        system = sc.run()
    out = (
        final_state(system),
        applied_updates(system),
        observable(sc.observe(system)),
        len(system.failures),
    )
    system.shutdown()
    return out


@pytest.mark.parametrize("arch", STRICT)
@pytest.mark.parametrize("transport", ("inproc", "tcp"))
def test_strict_parity(arch, transport):
    sim_state, sim_applied, sim_obs, sim_failures = sim_run(arch)
    rt_state, rt_applied, rt_obs, rt_failures = realtime_run(arch, transport)
    assert rt_failures == sim_failures == 0
    assert rt_state == sim_state
    assert rt_applied == sim_applied
    assert rt_obs == sim_obs


@pytest.mark.parametrize("arch", OBSERVABLE)
def test_observable_parity(arch):
    _, _, sim_obs, sim_failures = sim_run(arch)
    _, _, rt_obs, rt_failures = realtime_run(arch, "inproc")
    assert rt_failures == sim_failures == 0
    assert rt_obs == sim_obs


def test_engine_tag_differs_between_backends():
    sc = arch_scenario("sharding")
    system = sc.run()
    assert system.engine.name == "sim"
    with default_engine(lambda: RealtimeEngine(time_scale=SCALE)):
        sc2 = arch_scenario("sharding")
        system2 = sc2.run()
    assert system2.engine.name == "realtime"
    assert system2.telemetry.engine == "realtime"
    system2.shutdown()
