"""Broker engine parity: the broker_sharded scenario's client-
observable history must agree across sim, realtime (inproc and tcp)
and cluster engines.

broker_sharded has the same causality-only structure as sharding, so
it gets the strict tier against realtime (equal final state + applied
multiset + observables); the cluster comparison checks the observable
history and final state through real worker processes.
"""

import functools

import pytest

from repro.explore.scenarios import arch_scenario
from repro.runtime import RealtimeEngine, default_engine
from repro.runtime.cluster import ClusterEngine

from .test_parity import SCALE, applied_updates, final_state, observable
from .test_cluster import HB

ARCH = "broker_sharded"


@functools.lru_cache(maxsize=None)
def broker_sim_run():
    sc = arch_scenario(ARCH)
    system = sc.run()
    return (
        final_state(system),
        applied_updates(system),
        observable(sc.observe(system)),
        len(system.failures),
    )


@pytest.mark.parametrize("transport", ("inproc", "tcp"))
def test_realtime_strict_parity(transport):
    sim_state, sim_applied, sim_obs, sim_failures = broker_sim_run()
    with default_engine(lambda: RealtimeEngine(time_scale=SCALE, transport=transport)):
        sc = arch_scenario(ARCH)
        system = sc.run()
    try:
        assert len(system.failures) == sim_failures == 0
        assert final_state(system) == sim_state
        assert applied_updates(system) == sim_applied
        assert observable(sc.observe(system)) == sim_obs
    finally:
        system.shutdown()


def test_cluster_parity():
    sim_state, _, sim_obs, sim_failures = broker_sim_run()
    with default_engine(lambda: ClusterEngine(time_scale=SCALE, **HB)):
        sc = arch_scenario(ARCH)
        system = sc.run()
    try:
        assert len(system.failures) == sim_failures == 0
        assert final_state(system) == sim_state
        assert observable(sc.observe(system)) == sim_obs
    finally:
        system.shutdown()


def test_sim_observables_are_the_expected_broker_history():
    """Pin the scenario's client-visible outcome: three publishes get
    per-key dense offsets, the fetch sees both of key a's records, the
    commit lands at offset 1."""
    _, _, obs, failures = broker_sim_run()
    assert failures == 0
    results = obs["results"]
    by_op = {(op, key): (ok, offset, nrec) for op, key, ok, offset, nrec in results}
    assert by_op[("PUB", "a")][0] and by_op[("PUB", "b")][0]
    assert by_op[("FETCH", "a")] == (True, None, 2)
    assert by_op[("COMMIT", "a")] == (True, 1, None)
    # a's two publishes occupy offsets 0 and 1 of its partition
    pub_offsets = [offset for op, key, ok, offset, _ in results if op == "PUB" and key == "a"]
    assert pub_offsets == [0, 1]
