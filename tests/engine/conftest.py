"""Engine-suite fixtures: cluster worker-process hygiene.

Every cluster worker is spawned into its own process group and recorded
in a module-level registry; this autouse fixture reaps anything still
registered after each test and fails the test that leaked it, so a
crashing test can never strand worker processes on CI.
"""

import pytest

from repro.runtime.cluster import live_worker_pgids, reap_orphan_workers


@pytest.fixture(autouse=True)
def no_orphan_workers():
    before = live_worker_pgids()
    yield
    leaked = reap_orphan_workers()
    fresh = [pgid for pgid in leaked if pgid not in before]
    assert not fresh, f"test leaked cluster worker process group(s): {fresh}"
