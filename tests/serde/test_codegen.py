"""Serializer code generation: generated code round-trips and agrees
with the interpreter-based codec."""

import pytest

from repro.core.errors import SerdeError
from repro.serde import (
    Array,
    CString,
    Pointer,
    Primitive,
    SizedBuffer,
    TaggedUnion,
    TypeRegistry,
    generate_module,
    load_generated,
)
from repro.serde.traverse import Decoder, Encoder


def gen(reg, root):
    return load_generated(generate_module(reg, root))


class TestGeneratedRoundtrip:
    def test_flat_struct(self):
        reg = TypeRegistry()
        reg.struct("p", x=Primitive("int32"), y=Primitive("float64"))
        ns = gen(reg, "p")
        v = {"x": 4, "y": 2.5}
        assert ns["decode_p"](ns["encode_p"](v)) == v

    def test_nested_structs(self):
        reg = TypeRegistry()
        reg.struct("inner", a=Primitive("uint16"))
        reg.struct("outer", i="inner", b=Primitive("bool"))
        ns = gen(reg, "outer")
        v = {"i": {"a": 9}, "b": True}
        assert ns["decode_outer"](ns["encode_outer"](v)) == v

    def test_pointer_and_depth(self):
        reg = TypeRegistry(max_depth=3)
        reg.struct("node", v=Primitive("int64"), next=Pointer("node"))
        ns = gen(reg, "node")
        lst = {"v": 1, "next": {"v": 2, "next": {"v": 3, "next": {"v": 4, "next": None}}}}
        out = ns["decode_node"](ns["encode_node"](lst))
        # depth-capped like the interpreter: the root struct is depth 0,
        # each pointer hop adds one, so max_depth=3 keeps 4 nodes
        n = 0
        cur = out
        while cur is not None:
            n += 1
            cur = cur["next"]
        assert n == 4
        from repro.serde.traverse import Encoder as _E
        assert ns["encode_node"](lst) == _E(reg).encode("node", lst)

    def test_array_buffer_string(self):
        reg = TypeRegistry()
        reg.struct(
            "rec",
            arr=Array(Primitive("uint8"), 3),
            buf=SizedBuffer(),
            name=CString(),
        )
        ns = gen(reg, "rec")
        v = {"arr": [1, 2, 3], "buf": b"raw", "name": "x"}
        assert ns["decode_rec"](ns["encode_rec"](v)) == v

    def test_union(self):
        reg = TypeRegistry()
        reg.register("u", TaggedUnion("u", ((0, Primitive("int32")), (1, CString()))))
        reg.struct("rec", payload="u")
        ns = gen(reg, "rec")
        for v in [{"payload": (0, -9)}, {"payload": (1, "s")}]:
            assert ns["decode_rec"](ns["encode_rec"](v)) == v

    def test_unknown_root(self):
        with pytest.raises(SerdeError):
            generate_module(TypeRegistry(), "nope")


class TestAgreementWithInterpreter:
    def test_same_bytes_as_interpreted_codec(self):
        reg = TypeRegistry()
        reg.struct("inner", a=Primitive("uint16"), s=CString())
        reg.struct("rec", i="inner", p=Pointer("inner"), n=Primitive("int64"))
        ns = gen(reg, "rec")
        v = {"i": {"a": 1, "s": "q"}, "p": {"a": 2, "s": "r"}, "n": -5}
        assert ns["encode_rec"](v) == Encoder(reg).encode("rec", v)

    def test_generated_decodes_interpreted(self):
        reg = TypeRegistry()
        reg.struct("rec", xs=Array(Primitive("int32"), 2))
        ns = gen(reg, "rec")
        v = {"xs": [10, 20]}
        assert ns["decode_rec"](Encoder(reg).encode("rec", v)) == v

    def test_interpreted_decodes_generated(self):
        reg = TypeRegistry()
        reg.struct("rec", b=SizedBuffer())
        ns = gen(reg, "rec")
        v = {"b": b"\x00\x01"}
        assert Decoder(reg).decode("rec", ns["encode_rec"](v)) == v


class TestSubstrateSchemas:
    def test_redis_entry_generated(self):
        from repro.direct.schemas import redis_entry_schema

        reg = TypeRegistry()
        root = redis_entry_schema(reg)
        reg.validate()
        ns = gen(reg, root)
        v = {
            "key": "user:1",
            "value": {"kind": 0, "data": b"hello", "int_value": 0},
            "expires_at": 0.0,
            "has_expiry": False,
            "lru_clock": 7,
        }
        assert ns[f"decode_{root}"](ns[f"encode_{root}"](v)) == v

    def test_suricata_packet_generated(self):
        from repro.direct.schemas import suricata_packet_schema

        reg = TypeRegistry()
        root = suricata_packet_schema(reg)
        reg.validate()
        ns = gen(reg, root)
        v = {
            "ts": 1.5,
            "pcap_cnt": 10,
            "eth": {"dst": [0] * 6, "src": [1] * 6, "ethertype": 0x0800},
            "ip": (4, {
                "version_ihl": 0x45, "tos": 0, "total_len": 60, "ident": 1,
                "flags_frag": 0, "ttl": 64, "proto": 6, "checksum": 0,
                "src": 0x0A000001, "dst": 0xC0A80001,
            }),
            "l4": (6, {
                "src_port": 1234, "dst_port": 80, "seq": 1, "ack": 0,
                "off_flags": 0x5002, "window": 65535, "checksum": 0, "urgent": 0,
            }),
            "payload": b"GET / HTTP/1.1",
            "flow": {
                "packets_toserver": 3, "packets_toclient": 2,
                "bytes_toserver": 300, "bytes_toclient": 200,
                "state": 1, "alerted": False, "app_proto": 1, "last_seen": 1.5,
            },
            "alerts": [None] * 15,
            "alert_count": 0,
            "flags": 0,
            "vlan_id": [0, 0],
            "livedev": "eth0",
            "next": None,
        }
        assert ns[f"decode_{root}"](ns[f"encode_{root}"](v)) == v

    def test_generated_loc_measured(self):
        from repro.arch.loc import serde_generated_loc

        loc = serde_generated_loc()
        # the Suricata packet serializer is much bigger than Redis's,
        # matching the paper's 2380 vs 182 relationship
        assert loc["suricata_packet"] > 3 * loc["redis_kv"]
