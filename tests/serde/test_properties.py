"""Property-based serde tests: random schemas/values round-trip, and
generated code always agrees with the interpreted codec."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SerdeError
from repro.serde import (
    Array,
    CString,
    Pointer,
    Primitive,
    SavedData,
    Serializer,
    SizedBuffer,
    TypeRegistry,
    decode_generic,
    encode_generic,
    generate_module,
    leaf_paths,
    load_generated,
)
from repro.serde.traverse import Decoder, Encoder

# -- generic codec -----------------------------------------------------------

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=5), inner, max_size=4),
    ),
    max_leaves=15,
)


@given(json_like)
@settings(max_examples=200)
def test_generic_roundtrip(value):
    assert decode_generic(encode_generic(value)) == value


# -- typed codec over random schemas ----------------------------------------

_PRIMS = ["int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
          "uint64", "float64", "bool"]

_RANGES = {
    "int8": (-128, 127),
    "int16": (-(2**15), 2**15 - 1),
    "int32": (-(2**31), 2**31 - 1),
    "int64": (-(2**63), 2**63 - 1),
    "uint8": (0, 255),
    "uint16": (0, 2**16 - 1),
    "uint32": (0, 2**32 - 1),
    "uint64": (0, 2**64 - 1),
}


@st.composite
def schema_and_value(draw, depth=2):
    """Draw a (ctype, value) pair."""
    choice = draw(st.integers(0, 5 if depth > 0 else 2))
    if choice <= 1:
        kind = draw(st.sampled_from(_PRIMS))
        if kind == "bool":
            return Primitive(kind), draw(st.booleans())
        if kind == "float64":
            return Primitive(kind), draw(
                st.floats(allow_nan=False, allow_infinity=False)
            )
        lo, hi = _RANGES[kind]
        return Primitive(kind), draw(st.integers(lo, hi))
    if choice == 2:
        return CString(64), draw(st.text(max_size=10))
    if choice == 3:
        return SizedBuffer(64), draw(st.binary(max_size=10))
    if choice == 4:
        elem_t, _ = draw(schema_and_value(depth=0))
        n = draw(st.integers(0, 3))
        values = [draw(schema_and_value(depth=0)) for _ in range(n)]
        # regenerate values of the right element type
        elem_values = []
        for _ in range(n):
            t2, v2 = draw(schema_and_value(depth=0).filter(lambda tv: type(tv[0]) is type(elem_t) and tv[0] == elem_t))
            elem_values.append(v2)
        return Array(elem_t, n), elem_values
    # pointer
    inner_t, inner_v = draw(schema_and_value(depth=depth - 1))
    is_null = draw(st.booleans())
    return Pointer(inner_t), (None if is_null else inner_v)


@given(schema_and_value())
@settings(max_examples=150)
def test_typed_roundtrip(tv):
    t, v = tv
    reg = TypeRegistry()
    enc = Encoder(reg).encode(t, v)
    out = Decoder(reg).decode(t, enc)
    assert out == v or (isinstance(v, list) and list(out) == list(v))


@st.composite
def struct_schema(draw):
    reg = TypeRegistry()
    n_fields = draw(st.integers(1, 4))
    fields = {}
    value = {}
    for i in range(n_fields):
        t, v = draw(schema_and_value(depth=1))
        fields[f"f{i}"] = t
        value[f"f{i}"] = v
    reg.struct("rec", **fields)
    return reg, value


# -- framing robustness ------------------------------------------------------
#
# A receiver must never see a *different* value out of a damaged frame:
# every strict prefix and every garbage-suffixed frame decodes to a
# SerdeError, not to garbage and not to an arbitrary exception.

@given(json_like, st.integers(min_value=0))
@settings(max_examples=200)
def test_truncated_frames_raise_serde_error(value, cut):
    blob = encode_generic(value)
    prefix = blob[: cut % len(blob)]  # every blob has >= 1 tag byte
    with pytest.raises(SerdeError):
        decode_generic(prefix)


@given(json_like, st.binary(min_size=1, max_size=8))
@settings(max_examples=200)
def test_garbage_suffix_raises_serde_error(value, garbage):
    with pytest.raises(SerdeError):
        decode_generic(encode_generic(value) + garbage)


@given(json_like)
@settings(max_examples=100)
def test_serializer_saveddata_roundtrip(value):
    ser = Serializer()
    saved = ser.encode(None, value)
    assert saved.schema is None
    assert len(saved) == len(saved.blob)
    assert ser.decode(saved) == value


@given(json_like, st.integers(min_value=0))
@settings(max_examples=100)
def test_serializer_rejects_truncated_saveddata(value, cut):
    ser = Serializer()
    blob = ser.encode(None, value).blob
    with pytest.raises(SerdeError):
        ser.decode(SavedData(None, blob[: cut % len(blob)]))


# -- codegen stability across equivalent models -------------------------------
#
# Generated codecs are persisted artifacts: two structurally equal
# registries (independently constructed, extra unrelated types, any
# registration order) must generate byte-identical modules, and the
# traversal must report the same leaf paths.

def _rebuild(reg):
    """An independently-constructed registry equal to ``reg``'s rec."""
    clone = TypeRegistry()
    fields = {f.name: copy.deepcopy(f.type) for f in reg.get("rec").fields}
    clone.struct("rec", **fields)
    return clone


@given(struct_schema())
@settings(max_examples=50)
def test_codegen_stable_across_equivalent_models(rv):
    reg, value = rv
    clone = _rebuild(reg)
    src = generate_module(reg, "rec")
    assert generate_module(clone, "rec") == src
    # and the two generated codecs agree on the same value
    enc = load_generated(src)["encode_rec"](value)
    assert load_generated(generate_module(clone, "rec"))["encode_rec"](value) == enc


@given(struct_schema())
@settings(max_examples=50)
def test_codegen_ignores_unrelated_registrations(rv):
    reg, _value = rv
    src = generate_module(reg, "rec")
    reg.struct("unrelated", pad=Primitive("uint32"))
    assert generate_module(reg, "rec") == src


@given(struct_schema())
@settings(max_examples=50)
def test_traversal_stable_across_equivalent_models(rv):
    reg, value = rv
    paths = list(leaf_paths(reg, "rec", value))
    assert list(leaf_paths(_rebuild(reg), "rec", value)) == paths
    # deterministic: repeated traversal of the same model/value agrees
    assert list(leaf_paths(reg, "rec", value)) == paths


@given(struct_schema())
@settings(max_examples=75)
def test_generated_code_agrees_with_interpreter(rv):
    reg, value = rv
    ns = load_generated(generate_module(reg, "rec"))
    interpreted = Encoder(reg).encode("rec", value)
    generated = ns["encode_rec"](value)
    assert generated == interpreted
    assert ns["decode_rec"](generated) == Decoder(reg).decode("rec", interpreted)
