"""Property-based serde tests: random schemas/values round-trip, and
generated code always agrees with the interpreted codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serde import (
    Array,
    CString,
    Pointer,
    Primitive,
    SizedBuffer,
    TypeRegistry,
    decode_generic,
    encode_generic,
    generate_module,
    load_generated,
)
from repro.serde.traverse import Decoder, Encoder

# -- generic codec -----------------------------------------------------------

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=5), inner, max_size=4),
    ),
    max_leaves=15,
)


@given(json_like)
@settings(max_examples=200)
def test_generic_roundtrip(value):
    assert decode_generic(encode_generic(value)) == value


# -- typed codec over random schemas ----------------------------------------

_PRIMS = ["int8", "int16", "int32", "int64", "uint8", "uint16", "uint32",
          "uint64", "float64", "bool"]

_RANGES = {
    "int8": (-128, 127),
    "int16": (-(2**15), 2**15 - 1),
    "int32": (-(2**31), 2**31 - 1),
    "int64": (-(2**63), 2**63 - 1),
    "uint8": (0, 255),
    "uint16": (0, 2**16 - 1),
    "uint32": (0, 2**32 - 1),
    "uint64": (0, 2**64 - 1),
}


@st.composite
def schema_and_value(draw, depth=2):
    """Draw a (ctype, value) pair."""
    choice = draw(st.integers(0, 5 if depth > 0 else 2))
    if choice <= 1:
        kind = draw(st.sampled_from(_PRIMS))
        if kind == "bool":
            return Primitive(kind), draw(st.booleans())
        if kind == "float64":
            return Primitive(kind), draw(
                st.floats(allow_nan=False, allow_infinity=False)
            )
        lo, hi = _RANGES[kind]
        return Primitive(kind), draw(st.integers(lo, hi))
    if choice == 2:
        return CString(64), draw(st.text(max_size=10))
    if choice == 3:
        return SizedBuffer(64), draw(st.binary(max_size=10))
    if choice == 4:
        elem_t, _ = draw(schema_and_value(depth=0))
        n = draw(st.integers(0, 3))
        values = [draw(schema_and_value(depth=0)) for _ in range(n)]
        # regenerate values of the right element type
        elem_values = []
        for _ in range(n):
            t2, v2 = draw(schema_and_value(depth=0).filter(lambda tv: type(tv[0]) is type(elem_t) and tv[0] == elem_t))
            elem_values.append(v2)
        return Array(elem_t, n), elem_values
    # pointer
    inner_t, inner_v = draw(schema_and_value(depth=depth - 1))
    is_null = draw(st.booleans())
    return Pointer(inner_t), (None if is_null else inner_v)


@given(schema_and_value())
@settings(max_examples=150)
def test_typed_roundtrip(tv):
    t, v = tv
    reg = TypeRegistry()
    enc = Encoder(reg).encode(t, v)
    out = Decoder(reg).decode(t, enc)
    assert out == v or (isinstance(v, list) and list(out) == list(v))


@st.composite
def struct_schema(draw):
    reg = TypeRegistry()
    n_fields = draw(st.integers(1, 4))
    fields = {}
    value = {}
    for i in range(n_fields):
        t, v = draw(schema_and_value(depth=1))
        fields[f"f{i}"] = t
        value[f"f{i}"] = v
    reg.struct("rec", **fields)
    return reg, value


@given(struct_schema())
@settings(max_examples=75)
def test_generated_code_agrees_with_interpreter(rv):
    reg, value = rv
    ns = load_generated(generate_module(reg, "rec"))
    interpreted = Encoder(reg).encode("rec", value)
    generated = ns["encode_rec"](value)
    assert generated == interpreted
    assert ns["decode_rec"](generated) == Decoder(reg).decode("rec", interpreted)
