"""Serialization framework tests: model, traversal, framing."""

import pytest

from repro.core.errors import SerdeError
from repro.serde import (
    Array,
    CString,
    Pointer,
    Primitive,
    SavedData,
    Serializer,
    SizedBuffer,
    Struct,
    TaggedUnion,
    TypeRegistry,
    decode_generic,
    encode_generic,
    leaf_paths,
    visit,
)
from repro.serde.traverse import Decoder, Encoder


def point_registry():
    reg = TypeRegistry()
    reg.struct("point", x=Primitive("int32"), y=Primitive("int32"))
    return reg


class TestTypeModel:
    def test_unknown_primitive_rejected(self):
        with pytest.raises(SerdeError):
            Primitive("int128")

    def test_negative_array_rejected(self):
        with pytest.raises(SerdeError):
            Array(Primitive("int32"), -1)

    def test_duplicate_registration_rejected(self):
        reg = point_registry()
        with pytest.raises(SerdeError):
            reg.struct("point", x=Primitive("int32"))

    def test_resolve_by_name(self):
        reg = point_registry()
        assert isinstance(reg.resolve("point"), Struct)

    def test_resolve_unknown(self):
        with pytest.raises(SerdeError):
            point_registry().resolve("nope")

    def test_validate_detects_dangling_reference(self):
        reg = TypeRegistry()
        reg.struct("bad", p=Pointer("missing"))
        with pytest.raises(SerdeError):
            reg.validate()

    def test_validate_recursive_type_ok(self):
        reg = TypeRegistry()
        reg.struct("node", value=Primitive("int64"), next=Pointer("node"))
        reg.validate()


class TestEncodeDecode:
    def roundtrip(self, reg, t, value):
        enc = Encoder(reg)
        dec = Decoder(reg)
        data = enc.encode(t, value)
        return dec.decode(t, data)

    def test_struct_roundtrip(self):
        reg = point_registry()
        assert self.roundtrip(reg, "point", {"x": -5, "y": 7}) == {"x": -5, "y": 7}

    def test_all_primitives(self):
        reg = TypeRegistry()
        for kind, value in [
            ("int8", -100), ("int16", -30000), ("int32", -2**31), ("int64", 2**60),
            ("uint8", 255), ("uint16", 65535), ("uint32", 2**32 - 1),
            ("uint64", 2**63), ("float64", 3.5), ("bool", True),
        ]:
            assert self.roundtrip(reg, Primitive(kind), value) == value

    def test_float32_lossy_but_stable(self):
        reg = TypeRegistry()
        out = self.roundtrip(reg, Primitive("float32"), 1.5)
        assert out == 1.5

    def test_char(self):
        reg = TypeRegistry()
        assert self.roundtrip(reg, Primitive("char"), b"A") == b"A"

    def test_null_pointer(self):
        reg = point_registry()
        assert self.roundtrip(reg, Pointer("point"), None) is None

    def test_pointer_to_struct(self):
        reg = point_registry()
        v = {"x": 1, "y": 2}
        assert self.roundtrip(reg, Pointer("point"), v) == v

    def test_array(self):
        reg = TypeRegistry()
        t = Array(Primitive("uint8"), 4)
        assert self.roundtrip(reg, t, [1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_array_wrong_length(self):
        reg = TypeRegistry()
        with pytest.raises(SerdeError):
            Encoder(reg).encode(Array(Primitive("uint8"), 4), [1])

    def test_sized_buffer(self):
        reg = TypeRegistry()
        assert self.roundtrip(reg, SizedBuffer(), b"hello") == b"hello"

    def test_sized_buffer_over_max(self):
        reg = TypeRegistry()
        with pytest.raises(SerdeError):
            Encoder(reg).encode(SizedBuffer(4), b"too long")

    def test_cstring(self):
        reg = TypeRegistry()
        assert self.roundtrip(reg, CString(), "héllo") == "héllo"

    def test_tagged_union(self):
        reg = TypeRegistry()
        t = TaggedUnion("u", ((1, Primitive("int32")), (2, CString())))
        assert self.roundtrip(reg, t, (1, 42)) == (1, 42)
        assert self.roundtrip(reg, t, (2, "x")) == (2, "x")

    def test_union_unknown_tag(self):
        reg = TypeRegistry()
        t = TaggedUnion("u", ((1, Primitive("int32")),))
        with pytest.raises(SerdeError):
            Encoder(reg).encode(t, (9, 0))

    def test_missing_struct_field(self):
        reg = point_registry()
        with pytest.raises(SerdeError):
            Encoder(reg).encode("point", {"x": 1})

    def test_trailing_bytes_rejected(self):
        reg = point_registry()
        data = Encoder(reg).encode("point", {"x": 1, "y": 2})
        with pytest.raises(SerdeError):
            Decoder(reg).decode("point", data + b"\x00")

    def test_truncated_rejected(self):
        reg = point_registry()
        data = Encoder(reg).encode("point", {"x": 1, "y": 2})
        with pytest.raises(SerdeError):
            Decoder(reg).decode("point", data[:-1])


class TestRecursionDepth:
    def linked_list(self, n):
        head = None
        for i in reversed(range(n)):
            head = {"value": i, "next": head}
        return head

    def list_len(self, node):
        n = 0
        while node is not None:
            n += 1
            node = node["next"]
        return n

    def test_list_within_depth_roundtrips(self):
        reg = TypeRegistry(max_depth=16)
        reg.struct("node", value=Primitive("int64"), next=Pointer("node"))
        v = self.linked_list(5)
        enc = Encoder(reg).encode(Pointer("node"), v)
        out = Decoder(reg).decode(Pointer("node"), enc)
        assert self.list_len(out) == 5

    def test_list_truncated_at_max_depth(self):
        """The paper: 'linked lists are only serialized up to a maximum
        length' — protecting the serialization buffer."""
        reg = TypeRegistry(max_depth=4)
        reg.struct("node", value=Primitive("int64"), next=Pointer("node"))
        v = self.linked_list(100)
        enc = Encoder(reg).encode(Pointer("node"), v)
        out = Decoder(reg).decode(Pointer("node"), enc)
        assert self.list_len(out) == 4

    def test_cycle_terminates(self):
        reg = TypeRegistry(max_depth=8)
        reg.struct("node", value=Primitive("int64"), next=Pointer("node"))
        a = {"value": 1, "next": None}
        a["next"] = a  # cycle
        enc = Encoder(reg).encode(Pointer("node"), a)
        out = Decoder(reg).decode(Pointer("node"), enc)
        assert self.list_len(out) == 8


class TestVisitor:
    def test_leaf_paths(self):
        reg = TypeRegistry()
        reg.struct(
            "rec",
            a=Primitive("int32"),
            arr=Array(Primitive("uint8"), 2),
            p=Pointer(CString()),
        )
        value = {"a": 1, "arr": [7, 8], "p": "hi"}
        paths = dict(leaf_paths(reg, "rec", value))
        assert paths["$.a"] == 1
        assert paths["$.arr[0]"] == 7
        assert paths["$.p*"] == "hi"

    def test_null_pointer_not_visited(self):
        reg = TypeRegistry()
        reg.struct("rec", p=Pointer(Primitive("int32")))
        paths = dict(leaf_paths(reg, "rec", {"p": None}))
        assert paths == {}

    def test_union_path(self):
        reg = TypeRegistry()
        t = TaggedUnion("u", ((1, Primitive("int32")),))
        seen = []
        visit(reg, t, (1, 5), lambda p, _t, v: seen.append((p, v)))
        assert seen == [("$<1>", 5)]


class TestGenericCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None, True, False, 0, -1, 2**40, 3.25, "", "text", b"", b"bytes",
            [], [1, "a", None], (1, 2), {"k": "v", "n": {"deep": [1]}},
            {"mixed": [True, b"x", (None,)]},
        ],
    )
    def test_roundtrip(self, value):
        assert decode_generic(encode_generic(value)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerdeError):
            encode_generic(object())

    def test_truncation_detected(self):
        data = encode_generic([1, 2, 3])
        with pytest.raises(SerdeError):
            decode_generic(data[:-2])


class TestSerializer:
    def test_generic_schema(self):
        s = Serializer()
        saved = s.encode(None, {"a": 1})
        assert isinstance(saved, SavedData)
        assert saved.schema is None
        assert s.decode(saved) == {"a": 1}

    def test_typed_schema(self):
        reg = point_registry()
        s = Serializer(reg)
        saved = s.encode("point", {"x": 3, "y": 4})
        assert saved.schema == "point"
        assert s.decode(saved) == {"x": 3, "y": 4}

    def test_unknown_schema(self):
        with pytest.raises(SerdeError):
            Serializer().encode("nope", {})

    def test_decode_requires_saveddata(self):
        with pytest.raises(SerdeError):
            Serializer().decode(b"raw")

    def test_len(self):
        saved = Serializer().encode(None, "abc")
        assert len(saved) == len(saved.blob)
