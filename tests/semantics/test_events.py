"""Event and label tests (sec. 8.2)."""

from repro.semantics.events import (
    AdHoc,
    FF,
    Rd,
    STAR,
    Sched,
    StartL,
    StopL,
    Synch,
    TT,
    Unsched,
    WaitL,
    Wr,
    fresh_event,
    isolate_event,
)


class TestLabels:
    def test_rd_rendering(self):
        assert str(Rd("f", "Work", TT)) == "Rd_f(Work,tt)"
        assert str(Rd("f", "Work", FF)) == "Rd_f(Work,ff)"
        assert str(Rd("f", "n", STAR)) == "Rd_f(n,*)"

    def test_wr_single_junction(self):
        assert str(Wr(frozenset(["g"]), "n", STAR)) == "Wr_g(n,*)"

    def test_wr_multi_junction_sorted(self):
        label = Wr(frozenset(["Aud", "Act"]), "Work", TT)
        assert str(label) == "Wr_{Act,Aud}(Work,tt)"

    def test_start_stop(self):
        assert str(StartL("init", "f")) == "Start_init(f)"
        assert str(StopL("j", "f")) == "Stop_j(f)"

    def test_sched_unsched(self):
        assert str(Sched("f")) == "Sched_f"
        assert str(Unsched("f")) == "Unsched_f"

    def test_synch(self):
        assert str(Synch("J", ("A", "B"))) == "Synch_J(A,B)"
        assert str(Synch("J")) == "Synch_J()"

    def test_wait_placeholder(self):
        assert str(WaitL("J", ("m",), "!Work")) == "Wait_J([m],!Work)"

    def test_adhoc(self):
        assert str(AdHoc("complain")) == "complain"
        assert str(AdHoc("complain", "Act")) == "complain@Act"

    def test_labels_are_value_objects(self):
        assert Rd("f", "W", TT) == Rd("f", "W", TT)
        assert Rd("f", "W", TT) != Rd("f", "W", FF)


class TestEvents:
    def test_fresh_ids_unique(self):
        a = fresh_event(AdHoc("x"))
        b = fresh_event(AdHoc("x"))
        assert a.id != b.id
        assert a != b

    def test_outward_default_true(self):
        assert fresh_event(AdHoc("x")).outward is True

    def test_isolate_marker_in_str(self):
        e = isolate_event(fresh_event(AdHoc("x")))
        assert str(e).endswith("°")
