"""Program-level semantics (start-up portion) and rendering tests."""

from repro.core.compiler import compile_program
from repro.semantics.program_sem import denote_program, denote_startup
from repro.semantics.render import immediate_causality, to_dot, to_text

FIG3 = """
instance_types { TF, TG }
instances { f: TF, g: TG }
def main(t) = start f(t) + start g(t)
def TF::junction(t) =
  | init prop !Work
  | init data n
  host H1; save(n); write(n, g); assert[g] Work; wait[] !Work
def TG::junction(t) =
  | init prop !Work
  | init data n
  | guard Work
  restore(n); host H2; retract[f] Work
"""


class TestStartup:
    def test_main_enables_starts(self):
        prog = compile_program(FIG3)
        es = denote_startup(prog, {"t": 5})
        main_ev = es.find_label("main")[0]
        starts = [e for e in es.events if str(e.label).startswith("Start_init")]
        assert len(starts) == 2
        imm = immediate_causality(es)
        for s in starts:
            assert (main_ev.id, s.id) in imm

    def test_init_writes_follow_starts(self):
        prog = compile_program(FIG3)
        es = denote_startup(prog, {"t": 5})
        wrs = es.find_label("Wr_f::junction(Work,ff)")
        assert len(wrs) == 1
        es.validate()

    def test_program_without_main(self):
        prog = compile_program(
            """
            instance_types { T }
            instances { x: T }
            def T::j() = skip
            """
        )
        es = denote_startup(prog)
        assert es.size() == 1  # just the main event


class TestWholeProgram:
    def test_denote_program_components(self):
        prog = compile_program(FIG3)
        sem = denote_program(prog, {"t": 5})
        assert set(sem.junctions) == {"f::junction", "g::junction"}
        for es in sem.all_structures():
            es.validate()
        assert sem.total_events() > 10

    def test_guard_reads_in_g(self):
        prog = compile_program(FIG3)
        sem = denote_program(prog, {"t": 5})
        g = sem.junctions["g::junction"]
        assert g.find_label("Rd_g::junction(Work,tt)")

    def test_unbound_junction_stubbed(self):
        prog = compile_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x(noValueGiven)
            def T::j(backends) =
              for b in backends ; write(n, b)
            """
        )
        sem = denote_program(prog)  # no value for `backends`
        assert sem.junctions["x::j"].find(
            lambda e: str(e.label).startswith("unbound")
        )


class TestRendering:
    def test_to_text_deterministic(self):
        prog = compile_program(FIG3)
        sem = denote_program(prog, {"t": 5})
        t1 = to_text(sem.junctions["f::junction"])
        t2 = to_text(sem.junctions["f::junction"])
        assert t1 == t2
        assert "Sched_f::junction" in t1

    def test_to_dot_wellformed(self):
        prog = compile_program(FIG3)
        sem = denote_program(prog, {"t": 5})
        dot = to_dot(sem.startup, "startup")
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "main" in dot

    def test_conflicts_rendered(self):
        from repro.core.parser import parse_expression
        from repro.semantics.denote import Denoter

        es = Denoter("J").denote(
            parse_expression("case { A => skip; break otherwise => skip }")
        )
        text = to_text(es)
        assert "CONFLICT" in text
