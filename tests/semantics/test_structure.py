"""Event-structure axioms and algebra tests."""

import pytest

from repro.semantics.events import AdHoc, Wr, fresh_event, isolate_event, TT
from repro.semantics.structure import EventStructure as ES


def ev(name):
    return fresh_event(AdHoc(name))


def chain(*names):
    """A linear structure a -> b -> c ..."""
    events = [ev(n) for n in names]
    le = frozenset((events[i].id, events[i + 1].id) for i in range(len(events) - 1))
    return ES(frozenset(events), le, frozenset()), events


class TestAxioms:
    def test_valid_chain(self):
        es, _ = chain("a", "b", "c")
        es.validate()

    def test_cycle_rejected(self):
        a, b = ev("a"), ev("b")
        es = ES(frozenset([a, b]), frozenset([(a.id, b.id), (b.id, a.id)]), frozenset())
        with pytest.raises(ValueError):
            es.validate()

    def test_reflexive_strict_pair_rejected(self):
        a = ev("a")
        es = ES(frozenset([a]), frozenset([(a.id, a.id)]), frozenset())
        with pytest.raises(ValueError):
            es.validate()

    def test_dangling_enablement_rejected(self):
        a = ev("a")
        es = ES(frozenset([a]), frozenset([(a.id, 99999)]), frozenset())
        with pytest.raises(ValueError):
            es.validate()

    def test_conflicting_causes_rejected_by_prime_check(self):
        a, b, c = ev("a"), ev("b"), ev("c")
        es = ES(
            frozenset([a, b, c]),
            frozenset([(a.id, c.id), (b.id, c.id)]),
            frozenset([frozenset((a.id, b.id))]),
        )
        es.validate()  # the general axioms allow disjunctive causes
        with pytest.raises(ValueError):
            es.validate_prime()

    def test_conflict_inheritance(self):
        a, b, c = ev("a"), ev("b"), ev("c")
        es = ES(
            frozenset([a, b, c]),
            frozenset([(b.id, c.id)]),
            frozenset([frozenset((a.id, b.id))]),
        )
        inh = es.inherited_conflicts()
        assert frozenset((a.id, c.id)) in inh

    def test_history(self):
        es, (a, b, c) = chain("a", "b", "c")
        assert es.history(c.id) == {a.id, b.id, c.id}
        assert es.history(a.id) == {a.id}


class TestConcurrency:
    def test_parallel_events_concurrent(self):
        a, b = ev("a"), ev("b")
        es = ES(frozenset([a, b]), frozenset(), frozenset())
        assert es.concurrent(a.id, b.id)

    def test_ordered_not_concurrent(self):
        es, (a, b, _) = chain("a", "b", "c")
        assert not es.concurrent(a.id, b.id)

    def test_conflicting_not_concurrent(self):
        a, b = ev("a"), ev("b")
        es = ES(frozenset([a, b]), frozenset(), frozenset([frozenset((a.id, b.id))]))
        assert not es.concurrent(a.id, b.id)

    def test_inherited_conflict_blocks_concurrency(self):
        a, b, c = ev("a"), ev("b"), ev("c")
        es = ES(
            frozenset([a, b, c]),
            frozenset([(b.id, c.id)]),
            frozenset([frozenset((a.id, b.id))]),
        )
        assert not es.concurrent(a.id, c.id)


class TestPeripheries:
    def test_chain_peripheries(self):
        es, (a, b, c) = chain("a", "b", "c")
        assert es.leftmost() == frozenset([a])
        assert es.rightmost() == frozenset([c])

    def test_no_order_peripheries_are_everything(self):
        a, b = ev("a"), ev("b")
        es = ES(frozenset([a, b]), frozenset(), frozenset())
        assert es.leftmost() == frozenset([a, b])
        assert es.rightmost() == frozenset([a, b])

    def test_isolated_events_excluded_from_outward_rightmost(self):
        es, _ = chain("a", "b")
        iso = es.isolate()
        assert iso.outward_rightmost() == frozenset()
        assert len(iso.rightmost()) == 1


class TestTransforms:
    def test_isolate_preserves_ids(self):
        es, (a, b) = chain("a", "b")
        iso = es.isolate()
        assert iso.ids == es.ids
        assert all(not e.outward for e in iso.events)

    def test_isolate_event(self):
        e = ev("x")
        assert isolate_event(e).id == e.id
        assert isolate_event(e).outward is False

    def test_copy_fresh_bijection(self):
        es, (a, b) = chain("a", "b")
        copy, m = es.copy_fresh()
        assert len(copy.events) == 2
        assert set(m.keys()) == es.ids
        assert copy.ids.isdisjoint(es.ids)
        copy.validate()

    def test_copy_fresh_preserves_relations(self):
        a, b = ev("a"), ev("b")
        es = ES(
            frozenset([a, b]), frozenset([(a.id, b.id)]), frozenset()
        )
        copy, m = es.copy_fresh()
        assert (m[a.id], m[b.id]) in copy.le


class TestAlgebra:
    def test_union_is_plain(self):
        e1, _ = chain("a", "b")
        e2, _ = chain("c", "d")
        u = e1.union(e2)
        assert u.size() == 4
        u.validate()

    def test_then_links_peripheries(self):
        e1, (a, b) = chain("a", "b")
        e2, (c, d) = chain("c", "d")
        s = e1.then(e2)
        assert (b.id, c.id) in s.le
        assert (a.id, c.id) not in s.le
        s.validate()

    def test_then_skips_isolated_sources(self):
        e1, (a, b) = chain("a", "b")
        e2, (c, _) = chain("c", "d")
        s = e1.isolate().then(e2)
        assert (b.id, c.id) not in s.le

    def test_guarded_by(self):
        e1, (a, _) = chain("a", "b")
        g = ev("g")
        s = e1.guarded_by([g])
        assert (g.id, a.id) in s.le

    def test_find_label(self):
        e = fresh_event(Wr(frozenset(["f"]), "Work", TT))
        es = ES.of_events([e])
        assert es.find_label("Wr_f(Work,tt)") == [e]
