"""Denotational semantics tests against the paper's figures."""

import pytest

from repro.core.parser import parse_expression, parse_formula
from repro.semantics.denote import Denoter
from repro.semantics.events import AdHoc, Rd, Synch, WaitL, Wr
from repro.semantics.render import immediate_causality, minimal_conflicts


def denote(text, junction="J", guard=None, max_unfold=1):
    d = Denoter(junction, max_unfold=max_unfold)
    body = parse_expression(text)
    if guard is not None:
        return d.denote_junction(body, parse_formula(guard))
    return d.denote(body)


def labels(es):
    return sorted(str(e.label) for e in es.events)


class TestPrimitives:
    def test_skip_empty(self):
        assert denote("skip").size() == 0

    def test_restore_empty(self):
        assert denote("restore(n)").size() == 0

    def test_save_is_write_star(self):
        assert labels(denote("save(n)")) == ["Wr_J(n,*)"]

    def test_write_targets_remote(self):
        assert labels(denote("write(n, g)")) == ["Wr_g(n,*)"]

    def test_host_block_write_events(self):
        assert labels(denote("host H {a, b}")) == ["Wr_J(a,*)", "Wr_J(b,*)"]

    def test_host_block_no_writes_is_adhoc(self):
        # the formal rule yields the empty structure, but the figures
        # render abstracted host behaviour as ad hoc labels (sec. 8.2)
        assert labels(denote("host H")) == ["H@J"]

    def test_assert_two_events(self):
        # the formal rule: Wr_J(P,tt) and Wr_γ(P,tt)
        assert labels(denote("assert[g] Work")) == [
            "Wr_J(Work,tt)",
            "Wr_g(Work,tt)",
        ]

    def test_local_assert_one_event(self):
        assert labels(denote("assert[] Work")) == ["Wr_J(Work,tt)"]

    def test_retract_ff(self):
        assert labels(denote("retract[g] Work")) == [
            "Wr_J(Work,ff)",
            "Wr_g(Work,ff)",
        ]

    def test_start_stop(self):
        assert labels(denote("start x")) == ["Start_J(x)"]
        assert labels(denote("stop x")) == ["Stop_J(x)"]

    def test_wait_placeholder(self):
        es = denote("wait[n] !Work")
        (e,) = es.events
        assert isinstance(e.label, WaitL)
        assert e.label.keys == ("n",)


class TestComposition:
    def test_seq_orders(self):
        es = denote("save(n); write(n, g)")
        imm = immediate_causality(es)
        save = es.find_label("Wr_J(n,*)")[0]
        write = es.find_label("Wr_g(n,*)")[0]
        assert (save.id, write.id) in imm

    def test_par_unordered(self):
        es = denote("save(n) + save(m)")
        assert not es.le

    def test_reppar_has_copies(self):
        es = denote("save(n) || save(m)")
        # originals + one copy each (Fig. 20's ♮)
        assert es.size() == 4

    def test_fig3_structure(self):
        """Fig. 18's f-side skeleton."""
        es = denote(
            "host H1; save(n); write(n, g); assert[g] Work; wait[] !Work",
            junction="f",
        )
        es = Denoter("f").denote_junction(
            parse_expression("host H1; save(n); write(n, g); assert[g] Work; wait[] !Work")
        )
        names = labels(es)
        for expected in [
            "Sched_f",
            "Wr_f(n,*)",
            "Wr_g(n,*)",
            "Wr_f(Work,tt)",
            "Wr_g(Work,tt)",
            "Rd_f(Work,ff)",
            "Unsched_f",
        ]:
            assert expected in names
        es.validate()

    def test_junction_guard_reads_before_sched(self):
        es = denote("skip", junction="g", guard="Work")
        imm = immediate_causality(es)
        rd = es.find_label("Rd_g(Work,tt)")[0]
        sched = es.find_label("Sched_g")[0]
        assert (rd.id, sched.id) in imm


class TestFormulaDenotation:
    def test_single_clause(self):
        d = Denoter("J")
        es = d.denote_formula(parse_formula("A && !B"))
        synchs = [e for e in es.events if isinstance(e.label, Synch)]
        rds = [e for e in es.events if isinstance(e.label, Rd)]
        assert len(synchs) == 1
        assert {str(r.label) for r in rds} == {"Rd_J(A,tt)", "Rd_J(B,ff)"}

    def test_disjunction_clauses_conflict(self):
        d = Denoter("J")
        es = d.denote_formula(parse_formula("A || B"))
        synchs = [e for e in es.events if isinstance(e.label, Synch)]
        assert len(synchs) == 2
        assert frozenset((synchs[0].id, synchs[1].id)) in es.conflict

    def test_false_formula(self):
        d = Denoter("J")
        es = d.denote_formula(parse_formula("false"))
        assert any(isinstance(e.label, AdHoc) for e in es.events)


class TestOtherwise:
    def test_handler_copied_per_event(self):
        es = denote("(save(n); write(n, g)) otherwise[1] host C {x}")
        # body: 2 events (isolated) + 2 handler copies of 1 event
        handler_events = es.find_label("Wr_J(x,*)")
        assert len(handler_events) == 2
        body = es.find_label("Wr_J(n,*)") + es.find_label("Wr_g(n,*)")
        assert all(not e.outward for e in body)

    def test_handler_conflicts_with_replaced_event(self):
        es = denote("save(n) otherwise[1] host C {x}")
        save = es.find_label("Wr_J(n,*)")[0]
        handler = es.find_label("Wr_J(x,*)")[0]
        assert frozenset((save.id, handler.id)) in es.conflict

    def test_fig4_complain_appears(self):
        es = Denoter("Act").denote_junction(
            parse_expression(
                "host H1; save(n); "
                "{ write(n, Aud); assert[Aud] Work; wait[] !Work } "
                "otherwise[5] complain()"
            )
        )
        assert es.find_label("complain@Act")
        es.validate()


class TestCase:
    def test_case_guard_conflict(self):
        es = denote(
            "case { Work => save(n); break otherwise => skip }"
        )
        # the Work=true and Work=false guard groups conflict
        t = es.find_label("Rd_J(Work,tt)")
        f = es.find_label("Rd_J(Work,ff)")
        assert t and f
        assert minimal_conflicts(es)

    def test_reconsider_unfolds_boundedly(self):
        es = denote(
            "case { Work => retract[g] Work; reconsider otherwise => skip }",
            max_unfold=1,
        )
        bounds = [e for e in es.events if "-bound" in str(e.label)]
        assert bounds  # the unfolding was cut off, marked explicitly
        es.validate()

    def test_retry_unfolds_junction(self):
        d = Denoter("J", max_unfold=1)
        es = d.denote_junction(parse_expression("save(n); retry"))
        # body denoted at least twice (original + one unfold)
        assert len(es.find_label("Wr_J(n,*)")) >= 2


class TestTransaction:
    def test_synch_prefix_and_isolation(self):
        es = denote("<| save(n) |>")
        synchs = [e for e in es.events if isinstance(e.label, Synch)]
        assert len(synchs) == 1
        save = es.find_label("Wr_J(n,*)")[0]
        assert not save.outward
        imm = immediate_causality(es)
        assert (synchs[0].id, save.id) in imm


class TestWaitExpansion:
    def test_wait_expanded_in_junction(self):
        es = Denoter("f").denote_junction(
            parse_expression("wait[m] !Work; save(s)")
        )
        assert not [e for e in es.events if isinstance(e.label, WaitL)]
        assert es.find_label("Rd_f(Work,ff)")
        assert es.find_label("Rd_f(m,*)")
        es.validate()

    def test_wait_disjunction_duplicates_downstream(self):
        es = Denoter("f").denote_junction(
            parse_expression("wait[] A || B; save(s)")
        )
        # downstream save is duplicated per DNF alternative
        saves = es.find_label("Wr_f(s,*)")
        assert len(saves) == 2
        es.validate()

    def test_wait_data_reads_staged_after_formula(self):
        es = Denoter("f").denote_junction(parse_expression("wait[m] Go"))
        imm = immediate_causality(es)
        rd_go = es.find_label("Rd_f(Go,tt)")[0]
        rd_m = es.find_label("Rd_f(m,*)")[0]
        assert (rd_go.id, rd_m.id) in imm
