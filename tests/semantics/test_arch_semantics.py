"""The formal semantics applied to the real architecture library:
every shipped architecture denotes into valid event structures."""

import pytest

from repro.arch.loader import load_program
from repro.semantics import Sched, Unsched, denote_program


CASES = [
    ("remote_snapshot", {}, {"t": 1.0}),
    ("caching", {}, {"t": 1.0}),
    ("checkpointing", {}, {"t": 1.0}),
    ("watched_failover", {}, {"t": 1.0}),
    ("sharding", {"n_backends": 4}, {"t": 1.0}),
    ("parallel_sharding", {"n_backends": 3}, {"t": 1.0}),
]


@pytest.mark.parametrize("name,kwargs,env", CASES, ids=[c[0] for c in CASES])
def test_architecture_denotes_validly(name, kwargs, env):
    prog = load_program(name, **kwargs)
    sem = denote_program(prog, env, max_unfold=1)
    assert sem.total_events() > 10
    for es in sem.all_structures():
        es.validate()
    # every started instance's junction has Sched/Unsched bracketing
    for node, es in sem.junctions.items():
        scheds = [e for e in es.events if isinstance(e.label, Sched)]
        unscheds = [e for e in es.events if isinstance(e.label, Unsched)]
        assert scheds, f"{node} lacks a Sched event"
        assert unscheds, f"{node} lacks an Unsched event"


@pytest.mark.slow
def test_failover_denotes_validly():
    prog = load_program("failover")
    sem = denote_program(
        prog, {"backends": ["b1::serve", "b2::serve"], "t": 1.0}, max_unfold=1
    )
    assert sem.total_events() > 500
    for es in sem.all_structures():
        es.validate()


def test_at_guard_becomes_opaque_read():
    """Guards observing other junctions (b::startup's
    ``me::instance::serve@!Active``) denote as opaque literal reads."""
    from repro.core.compiler import compile_program
    from repro.semantics import denote_program as dp

    prog = compile_program(
        """
        instance_types { B }
        instances { b: B }
        def main() = start b a() c()
        def B::a() = | init prop !P
          skip
        def B::c() =
          | guard b::a@!P
          skip
        """
    )
    sem = dp(prog)
    es = sem.junctions["b::c"]
    reads = [e for e in es.events if "b::a@!P" in str(e.label)]
    assert reads
