"""Fig. 21: the event structure of the remote-snapshot Act instance.

The paper renders Act's behaviour as::

    Sched_Act → Wr_Act(n,*) → Wr_Aud(n,*) → Wr_{Act,Aud}(Work,tt)
              → Rd_Act(Work,ff) → Unsched_Act

with ``complain`` alternatives branching off (in minimal conflict with)
the steps of the guarded block.  We denote the real ``Act::junction``
from ``remote_snapshot.csaw`` and check that structure.
"""

from repro.arch.loader import load_program
from repro.core.expand import resolve_me_expr, specialize
from repro.semantics import Denoter
from repro.semantics.render import immediate_causality, minimal_conflicts


def act_structure():
    prog = load_program("remote_snapshot")
    cj = prog.junction("Actual", "junction")
    body, decls = specialize(cj.body, cj.decls, {"t": 5.0})
    body = resolve_me_expr(body, "Act", "junction")
    den = Denoter("Act")
    return den.denote_junction(body)


def test_fig21_causal_chain():
    es = act_structure()
    es.validate()
    imm = immediate_causality(es)

    def one(label):
        found = es.find_label(label)
        assert found, f"missing event {label}"
        return found[0]

    sched = one("Sched_Act")
    wr_n_local = one("Wr_Act(n,*)")
    wr_n_remote = one("Wr_Aud(n,*)")
    wr_work_local = one("Wr_Act(Work,tt)")
    wr_work_remote = one("Wr_Aud(Work,tt)")
    rd_work = one("Rd_Act(Work,ff)")

    # the chain of Fig. 21 (save → write → assert → wait-read)
    assert (wr_n_local.id, wr_n_remote.id) in imm
    assert (wr_n_remote.id, wr_work_local.id) in imm
    assert (wr_n_remote.id, wr_work_remote.id) in imm
    assert (wr_work_local.id, rd_work.id) in es.closure_le()
    # Sched reaches everything on the happy path
    for e in (wr_n_local, wr_n_remote, rd_work):
        assert es.leq(sched.id, e.id)
    # Unsched events close the junction
    assert es.find(lambda e: str(e.label) == "Unsched_Act")


def test_fig21_complain_alternatives_conflict():
    es = act_structure()
    complains = es.find_label("Complain@Act")
    # one complain copy per event of the guarded block (Fig. 21 shows
    # several alternative complain branches)
    assert len(complains) >= 3
    conflicts = minimal_conflicts(es)
    conflict_members = {x for pair in conflicts for x in pair}
    assert any(c.id in conflict_members for c in complains)


def test_fig21_guarded_block_isolated():
    es = act_structure()
    # events inside the otherwise body are isolated (cannot enable
    # through composition — the paper's outward flag)
    wr_remote = es.find_label("Wr_Aud(n,*)")[0]
    assert not wr_remote.outward
    # but the host/ save before the block is not
    wr_local = es.find_label("Wr_Act(n,*)")
    assert any(e.outward for e in wr_local)
