"""Direct (non-DSL) control-arm tests: messaging, sharding, caching,
checkpointing."""

import pytest

from repro.direct import (
    DirectCachedRedis,
    DirectCheckpointManager,
    DirectShardedRedis,
    MessageBus,
)
from repro.redislite import BenchDriver, Command, RedisServer, WorkloadGenerator
from repro.runtime.sim import Simulator


class TestMessageBus:
    def test_request_response(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        b.on("echo", lambda env: env.body[1].upper())
        got = []
        a.request("b", "echo", "hi", got.append)
        sim.run()
        assert got == ["HI"]

    def test_timeout_fires(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        timeouts = []
        a.request("nowhere", "x", None, lambda r: None, timeout=0.1,
                  on_timeout=lambda: timeouts.append(sim.now))
        sim.run()
        assert timeouts == [pytest.approx(0.1)]

    def test_retry_then_success(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        b.on("x", lambda env: "ok")
        bus.set_down("b")
        sim.call_at(0.15, lambda: bus.set_down("b", False))
        got = []
        a.request("b", "x", None, got.append, timeout=0.1, retries=2)
        sim.run()
        assert got == ["ok"]

    def test_oneway(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        seen = []
        b.on("note", lambda env: seen.append(env.body[1]))
        a.oneway("b", "note", 42)
        sim.run()
        assert seen == [42]

    def test_broadcast(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        seen = []
        for name in ("b", "c"):
            ep = bus.endpoint(name)
            ep.on("hello", lambda env, n=name: seen.append(n))
        bus.broadcast("a", "hello", None)
        sim.run()
        assert sorted(seen) == ["b", "c"]

    def test_down_endpoint_ignores(self):
        sim = Simulator()
        bus = MessageBus(sim, latency=0.01)
        a = bus.endpoint("a")
        b = bus.endpoint("b")
        b.alive = False
        b.on("x", lambda env: "ok")
        got, timeouts = [], []
        a.request("b", "x", None, got.append, timeout=0.1,
                  on_timeout=lambda: timeouts.append(1))
        sim.run()
        assert got == [] and timeouts == [1]


class TestDirectSharding:
    def test_shard_by_key(self):
        sim = Simulator()
        svc = DirectShardedRedis(sim, 4)
        wl = WorkloadGenerator(n_keys=100, seed=13)
        svc.preload(wl.preload_commands())
        assert sum(svc.shard_sizes()) == 100
        res = BenchDriver(sim, svc, wl, clients=4).run(0.5)
        assert res.count > 100
        assert svc.failed_requests == 0

    def test_shard_timeout_marks_unhealthy(self):
        sim = Simulator()
        svc = DirectShardedRedis(sim, 2, timeout=0.1)
        svc.bus.set_down("shard0")
        # find a shard-0 key
        from repro.redislite import djb2

        key = next(f"k{i}" for i in range(100) if djb2(f"k{i}") % 2 == 0)
        got = []
        svc.submit(Command("GET", key), got.append)
        sim.run()
        assert not got[0].ok
        assert svc.healthy[0] is False

    def test_size_mode(self):
        sim = Simulator()
        svc = DirectShardedRedis(sim, 4, mode="size", size_table={"a": 100, "b": 70000})
        svc.preload([Command("SET", "a", b"x"), Command("SET", "b", b"y")])
        sizes = svc.shard_sizes()
        assert sizes[0] == 1 and sizes[2] == 1


class TestDirectCaching:
    def test_hit_miss(self):
        sim = Simulator()
        svc = DirectCachedRedis(sim, capacity=10)
        svc.preload([Command("SET", "k", b"v")])
        got = []
        svc.submit(Command("GET", "k"), got.append)
        sim.run()
        svc.submit(Command("GET", "k"), got.append)
        sim.run()
        assert got[0].value == b"v" and got[1].value == b"v"
        assert svc.hits == 1 and svc.misses == 1

    def test_set_invalidates(self):
        sim = Simulator()
        svc = DirectCachedRedis(sim, capacity=10)
        svc.preload([Command("SET", "k", b"old")])
        got = []
        svc.submit(Command("GET", "k"), got.append)
        sim.run()
        svc.submit(Command("SET", "k", b"new"), got.append)
        sim.run()
        svc.submit(Command("GET", "k"), got.append)
        sim.run()
        assert got[-1].value == b"new"

    def test_concurrent_misses_collapsed(self):
        sim = Simulator()
        svc = DirectCachedRedis(sim, capacity=10)
        svc.preload([Command("SET", "k", b"v")])
        got = []
        svc.submit(Command("GET", "k"), got.append)
        svc.submit(Command("GET", "k"), got.append)  # same tick, in flight
        sim.run()
        assert len(got) == 2 and all(r.value == b"v" for r in got)
        assert svc.server.commands_executed == 2  # preload SET + one GET


class TestDirectCheckpointing:
    def test_checkpoint_and_recover(self):
        sim = Simulator()
        server = RedisServer()
        for i in range(20):
            server.execute(Command("SET", f"k{i}", b"v"))
        stalls = []
        mgr = DirectCheckpointManager(sim, server, stall=stalls.append)
        mgr.checkpoint_now()
        sim.run()
        assert mgr.acked == 1 and stalls
        server.store.flush()
        ok = []
        mgr.recover(ok.append)
        sim.run()
        assert ok == [True]
        assert server.store.size() == 20

    def test_recover_without_snapshot(self):
        sim = Simulator()
        mgr = DirectCheckpointManager(sim, RedisServer(), stall=lambda d: None)
        ok = []
        mgr.recover(ok.append)
        sim.run()
        assert ok == [False]

    def test_storage_keeps_newest_seq(self):
        sim = Simulator()
        server = RedisServer()
        mgr = DirectCheckpointManager(sim, server, stall=lambda d: None)
        server.execute(Command("SET", "a", b"1"))
        mgr.checkpoint_now()
        sim.run()
        server.execute(Command("SET", "b", b"2"))
        mgr.checkpoint_now()
        sim.run()
        assert mgr.stored_seq == 1
        assert "b" in mgr.stored_snapshot["store"]["entries"]

    def test_scheduled(self):
        sim = Simulator()
        mgr = DirectCheckpointManager(sim, RedisServer(), stall=lambda d: None)
        mgr.schedule_checkpoints(1.0, 3.0)
        sim.run_until(4.0)
        assert mgr.checkpoints == 3
