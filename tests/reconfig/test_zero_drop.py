"""Zero-drop guarantee across every engine.

Requests are submitted *before* the transition, scheduled to land
*inside* the quiesce/cutover window, and submitted *after* — and every
single one must complete exactly once with ``ok=True`` on the sim
engine, the realtime engine and the cluster engine (real worker
processes; the transition rides the framed-TCP wire and the
supervisor's deploy/retire path).

Client timeouts are generous because the guarantee under test is
*no drop*, not low latency: on the cluster engine a transition spends
wall time spawning worker processes, which the cluster clock also
counts, so a request buffered across the window can wait ~10+ logical
seconds before its replayed delivery fires.
"""

import pytest

from repro.redislite import Command
from repro.runtime import RealtimeEngine, default_engine
from repro.runtime.cluster import ClusterEngine
from repro.runtime.supervisor import WorkerState

#: wall seconds per logical second on the wall-clock engines
SCALE = 0.02
#: generous supervision knobs — CI jitter must not fake a crash
HB = dict(heartbeat_interval=0.5, heartbeat_timeout=2.0)
#: sharding request deadline that comfortably spans a cluster
#: transition.  Safe because FrontApp.submit only enqueues — a request
#: buffered across the window starts its deadline at replay, not at
#: submit, so the generous value never delays quiesce drain.
TIMEOUT = 60.0
#: failover cannot use the generous value: its junctions derive
#: watchdog windows (``reactivate(3*t)``, ``otherwise[3*t]``) from the
#: same parameter and quiesce must outwait an idle watchdog cycle —
#: but 5.0 keeps 100ms+ of wall tolerance per window on a loaded host
FO_TIMEOUT = 5.0

ENGINES = {
    "sim": None,
    "realtime": lambda: RealtimeEngine(time_scale=SCALE),
    "cluster": lambda: ClusterEngine(time_scale=SCALE, **HB),
}

#: offsets (logical seconds) at which mid-transition requests are
#: scheduled, measured from the moment reconfigure() is entered —
#: 0.0 races the first quiesce, the rest land across the window
WINDOW_OFFSETS = (0.0, 0.3, 1.0, 2.5)


def drive_through_transition(svc, transition):
    """Submit 4 requests before, 4 inside, 4 after the transition;
    return (submitted_ids, completions) where completions is a list of
    ``(request_id, ok)``."""
    sys_ = svc.system
    clock = sys_.clock
    submitted = []
    completed = []

    def submit(i):
        submitted.append(i)
        svc.submit(
            Command("SET", f"k{i}", b"%d" % i),
            lambda r, i=i: completed.append((i, bool(r.ok))),
        )

    for i in range(4):
        submit(i)
        sys_.run_until(sys_.now + 1.5)

    # these fire while reconfigure() is blocking the caller
    for j, off in enumerate(WINDOW_OFFSETS):
        clock.call_after(off, lambda i=4 + j: submit(i))

    rep = transition()
    assert rep.ok, rep.reason
    sys_.run_until(sys_.now + 10.0)

    for i in range(8, 12):
        submit(i)
        sys_.run_until(sys_.now + 1.5)
    sys_.run_until(sys_.now + 15.0)
    return submitted, completed


def check_zero_drop(svc, submitted, completed):
    ids = [i for i, _ in completed]
    assert sorted(ids) == sorted(submitted), (
        f"dropped: {set(submitted) - set(ids)}, "
        f"duplicated: {[i for i in set(ids) if ids.count(i) > 1]}"
    )
    failed = [i for i, ok in completed if not ok]
    assert not failed, f"requests failed: {failed}"
    assert not svc.system.failures


def run_sharding(engine_factory):
    from repro.arch.sharding import ShardedRedis

    def build():
        return ShardedRedis(n_shards=2, seed=0, timeout=TIMEOUT)

    if engine_factory is None:
        svc = build()
    else:
        with default_engine(engine_factory):
            svc = build()
    submitted, completed = drive_through_transition(
        svc, lambda: svc.reconfigure_shards(3)
    )
    assert svc.n_shards == 3
    check_zero_drop(svc, submitted, completed)
    return svc


def run_failover(engine_factory):
    from repro.arch.failover import FailoverRedis

    def build():
        return FailoverRedis(seed=0, timeout=FO_TIMEOUT)

    if engine_factory is None:
        svc = build()
    else:
        with default_engine(engine_factory):
            svc = build()
    # grace must outlast one full reactivate watchdog window (3*t):
    # the removed replica's reactivate junction re-arms immediately, so
    # the drain is only observable at a window boundary
    submitted, completed = drive_through_transition(
        svc,
        lambda: svc.swap_backend(
            "b2", "b3", quiesce_grace=3.0 * FO_TIMEOUT + 5.0
        ),
    )
    assert svc.back_instances() == ["b1", "b3"]
    check_zero_drop(svc, submitted, completed)
    return svc


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_sharding_reshard_zero_drop(engine):
    svc = run_sharding(ENGINES[engine])
    if engine == "cluster":
        sup = svc.system.engine.supervisor
        assert sup.report().recovered()
        # the new shard's worker was deployed live and is healthy
        assert sup.statuses["Bck3"].state is WorkerState.RUNNING
    svc.system.shutdown()


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_failover_swap_zero_drop(engine):
    svc = run_failover(ENGINES[engine])
    if engine == "cluster":
        sup = svc.system.engine.supervisor
        assert sup.report().recovered()
        assert sup.statuses["b3"].state is WorkerState.RUNNING
        # the retired replica's worker was reaped and forgotten
        assert "b2" not in sup.statuses
    svc.system.shutdown()
