"""Property-based differ/planner tests (hypothesis).

Random architectures are generated from a small pool of junction
templates (every template is valid C-Saw that the repo compiler
accepts), then:

* ``diff_programs(a, a)`` is empty for every generated ``a``;
* ``apply_diff(a, diff_programs(a, b))`` reconstructs ``b`` up to
  :func:`program_signature` (the diff is a complete, applicable patch);
* every transition plan is a valid DAG whose topological order puts
  each quiesce before the cutover and the cutover before every
  rebind/start/stop/resume — the safety skeleton of the executor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import compile_program
from repro.reconfig import (
    apply_diff,
    diff_programs,
    plan_transition,
    program_signature,
)

#: junction template pool — each entry is the full indented decl+body
#: of ``def <T>::junction(t)``
TEMPLATES = (
    "  | init prop !P\n  | guard P\n  retract[] P",
    "  | init prop !P\n  | init data d\n  | guard P\n  retract[] P; save(d)",
    "  | init prop !Q\n  | guard Q\n  retract[] Q; host H",
    "  | init prop !P\n  | init prop !R\n  | guard P\n"
    "  retract[] P; assert[] R; retract[] R",
)

INSTANCES = ("i1", "i2", "i3", "i4", "i5")


def render(spec) -> str:
    """``spec`` is (type_templates, instance_types, started) where
    ``type_templates`` maps type name → template index, ``instance_types``
    maps instance → type, ``started`` is the tuple main starts."""
    type_templates, instance_types, started = spec
    lines = ["instance_types { " + ", ".join(sorted(type_templates)) + " }"]
    lines.append(
        "instances { "
        + ", ".join(f"{i}: {t}" for i, t in sorted(instance_types.items()))
        + " }"
    )
    lines.append("def main(t) = " + " + ".join(f"start {i}(t)" for i in started))
    for tname, ti in sorted(type_templates.items()):
        lines.append(f"def {tname}::junction(t) =\n{TEMPLATES[ti]}")
    return "\n".join(lines) + "\n"


@st.composite
def arch_specs(draw):
    n_types = draw(st.integers(1, 3))
    type_names = [f"T{i}" for i in range(1, n_types + 1)]
    type_templates = {
        t: draw(st.integers(0, len(TEMPLATES) - 1)) for t in type_names
    }
    n_insts = draw(st.integers(1, len(INSTANCES)))
    instance_types = {
        i: type_names[draw(st.integers(0, n_types - 1))]
        for i in INSTANCES[:n_insts]
    }
    k = draw(st.integers(1, n_insts))
    started = tuple(sorted(instance_types)[:k])
    return (type_templates, instance_types, started)


def compile_spec(spec):
    return compile_program(render(spec))


class TestDiffProperties:
    @given(arch_specs())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_is_empty(self, spec):
        a = compile_spec(spec)
        d = diff_programs(a, a)
        assert d.is_empty, d.summary()

    @given(arch_specs(), arch_specs())
    @settings(max_examples=60, deadline=None)
    def test_apply_diff_roundtrip(self, spec_a, spec_b):
        a, b = compile_spec(spec_a), compile_spec(spec_b)
        patched = apply_diff(a, diff_programs(a, b))
        assert program_signature(patched) == program_signature(b)

    @given(arch_specs(), arch_specs())
    @settings(max_examples=60, deadline=None)
    def test_diff_is_directional(self, spec_a, spec_b):
        a, b = compile_spec(spec_a), compile_spec(spec_b)
        d = diff_programs(a, b)
        if program_signature(a) == program_signature(b):
            assert d.is_empty
        else:
            assert not d.is_empty


class TestPlanProperties:
    @given(arch_specs(), arch_specs(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_plan_respects_lifecycle_order(self, spec_a, spec_b, transfer):
        a, b = compile_spec(spec_a), compile_spec(spec_b)
        d = diff_programs(a, b)
        # rebind every kept instance — the richest plan shape
        kept = tuple(
            sorted(
                set(a.instance_map()) & set(b.instance_map())
            )
        )
        plan = plan_transition(d, rebind=kept, transfer=transfer)
        plan.validate()
        order = [s.step_id for s in plan.ordered()]
        pos = {sid: i for i, sid in enumerate(order)}
        cut = pos["cutover"]
        for s in plan.steps:
            if s.kind in ("quiesce", "snapshot", "spawn"):
                assert pos[s.step_id] < cut, f"{s.step_id} after cutover"
            elif s.kind in ("rebind", "stop", "start", "transfer", "resume"):
                assert pos[s.step_id] > cut, f"{s.step_id} before cutover"
        for s in plan.by_kind("snapshot"):
            assert pos[f"quiesce:{s.target}"] < pos[s.step_id]
        for s in plan.by_kind("resume"):
            assert pos[s.step_id] > cut
            if transfer:
                assert pos["transfer"] < pos[s.step_id]

    @given(arch_specs(), arch_specs())
    @settings(max_examples=40, deadline=None)
    def test_quiesce_in_cutover_closure(self, spec_a, spec_b):
        a, b = compile_spec(spec_a), compile_spec(spec_b)
        d = diff_programs(a, b)
        kept = tuple(sorted(set(a.instance_map()) & set(b.instance_map())))
        plan = plan_transition(d, rebind=kept)
        closure = plan.closure("cutover")
        for s in plan.steps:
            if s.kind in ("quiesce", "snapshot", "spawn"):
                assert s.step_id in closure
