"""Reconfiguration-suite fixtures: cluster worker-process hygiene.

The chaos and zero-drop tests deploy on the cluster engine; this
autouse fixture reaps any worker process group a crashing test left
behind and fails the test that leaked it (same policy as the engine
suite).
"""

import pytest

from repro.runtime.cluster import live_worker_pgids, reap_orphan_workers


@pytest.fixture(autouse=True)
def no_orphan_workers():
    before = live_worker_pgids()
    yield
    leaked = reap_orphan_workers()
    fresh = [pgid for pgid in leaked if pgid not in before]
    assert not fresh, f"test leaked cluster worker process group(s): {fresh}"
