"""Static-analysis gate for reconfiguration targets.

A live transition is only as safe as its *target* architecture, so the
analyzer must stay green not just for the shipped sources (the
``tests/analysis`` sweep) but for every source the reconfiguration
machinery generates: the swapped failover programs and the resharded
sharding programs.  This is the gate the ``reconfig-parity`` CI job
runs — it re-sweeps the shipped ten too, so the job is self-contained.

The diff layer is also exercised on the real shipped programs (the
hypothesis suite uses synthetic ones): every generated transition has
a non-empty diff, and ``apply_diff`` reconstructs the target up to
:func:`program_signature`.
"""

import pytest

from repro.analysis import analyze_source
from repro.arch.loader import ARCHITECTURES, load_source
from repro.core.compiler import compile_program
from repro.reconfig import apply_diff, diff_programs, program_signature


def _errors(report):
    return [f for f in report.unsuppressed() if f.severity == "error"]


def _fmt(findings):
    return "\n".join(f"{f.kind} at {f.node} (key {f.key!r})" for f in findings)


def assert_green(text, label):
    report = analyze_source(text, label=label)
    assert _errors(report) == [], _fmt(_errors(report))


@pytest.mark.parametrize("name", ARCHITECTURES)
def test_shipped_source_is_green(name):
    assert_green(load_source(name), name)


# -- generated reconfiguration targets --------------------------------------


def swap_variants():
    from repro.arch.failover import swap_backend_source

    for program_name in ("failover", "failover_fast"):
        yield (
            f"{program_name}:b2->b3",
            load_source(program_name),
            swap_backend_source("b2", "b3", program_name=program_name),
        )


def reshard_variants():
    for name in ("sharding", "parallel_sharding"):
        for n_old, n_new in ((2, 3), (2, 4), (3, 5)):
            yield (
                f"{name}:{n_old}->{n_new}",
                load_source(name, n_backends=n_old),
                load_source(name, n_backends=n_new),
            )


TRANSITIONS = {label: (old, new) for label, old, new in (
    *swap_variants(), *reshard_variants()
)}


@pytest.mark.parametrize("label", sorted(TRANSITIONS))
def test_generated_target_is_green(label):
    _, new = TRANSITIONS[label]
    assert_green(new, label)


@pytest.mark.parametrize("label", sorted(TRANSITIONS))
def test_transition_diff_applies(label):
    old_text, new_text = TRANSITIONS[label]
    old = compile_program(old_text)
    new = compile_program(new_text)
    d = diff_programs(old, new)
    assert not d.is_empty, label
    assert program_signature(apply_diff(old, d)) == program_signature(new)
    # and the reverse direction patches back
    back = diff_programs(new, old)
    assert program_signature(apply_diff(new, back)) == program_signature(old)
