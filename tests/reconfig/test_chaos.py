"""Chaos soak: live reconfiguration under seeded faults on the cluster
engine — real worker processes, real SIGKILL, simulated link loss.

Two drills:

* a sharding reshard with seeded loss windows on the front→shard links
  across the whole transition — reliable delivery retries through the
  loss, the transition completes, and every request still completes
  exactly once with ``ok=True``;
* a failover replica swap with one ``kill_process_at`` aimed into the
  transition window (the survivor ``b1``'s worker is SIGKILLed while
  the swap is in flight) — the transition completes or rolls back
  cleanly, the supervisor restarts the worker, and no request is
  dropped or duplicated (requests may *fail* while every replica is
  momentarily gone; they may not vanish).
"""

from repro.redislite import Command
from repro.runtime import FaultPlan, default_engine
from repro.runtime.cluster import ClusterEngine
from repro.runtime.supervisor import BackoffPolicy, WorkerState

SCALE = 0.02
HB = dict(heartbeat_interval=0.5, heartbeat_timeout=2.0)
#: deterministic, quick restart so recovery lands inside the soak
BACKOFF = BackoffPolicy(base=3.0, jitter=0.0)


def _engine():
    return ClusterEngine(time_scale=SCALE, backoff=BACKOFF, **HB)


def _submit(svc, i, submitted, completed):
    submitted.append(i)
    svc.submit(
        Command("SET", f"k{i}", b"%d" % i),
        lambda r, i=i: completed.append((i, bool(r.ok))),
    )


def _exactly_once(submitted, completed):
    ids = [i for i, _ in completed]
    assert sorted(ids) == sorted(submitted), (
        f"dropped: {set(submitted) - set(ids)}, "
        f"duplicated: {sorted(i for i in set(ids) if ids.count(i) > 1)}"
    )


def test_reshard_through_loss_windows():
    from repro.arch.sharding import ShardedRedis

    with default_engine(_engine):
        svc = ShardedRedis(n_shards=2, seed=7, timeout=60.0)
    sys_ = svc.system
    submitted, completed = [], []

    for i in range(3):
        _submit(svc, i, submitted, completed)
        sys_.run_until(sys_.now + 1.5)

    plan = FaultPlan(sys_)
    now = sys_.now
    # lossy front→shard links across the entire transition window;
    # reliable delivery (ack + retry) must carry every update through
    plan.set_loss_between(now, now + 25.0, "Fnt", "Bck1", 0.4)
    plan.set_loss_between(now, now + 25.0, "Fnt", "Bck2", 0.4)
    for j, off in enumerate((0.0, 0.5, 1.5)):
        sys_.clock.call_after(
            off, lambda i=3 + j: _submit(svc, i, submitted, completed)
        )

    rep = svc.reconfigure_shards(3)
    assert rep.ok, rep.reason
    sys_.run_until(sys_.now + 30.0)

    for i in range(6, 9):
        _submit(svc, i, submitted, completed)
        sys_.run_until(sys_.now + 1.5)
    sys_.run_until(sys_.now + 20.0)

    _exactly_once(submitted, completed)
    assert all(ok for _, ok in completed), completed
    assert not sys_.failures
    sup = sys_.engine.supervisor
    assert sup.report().recovered()
    assert any(k == "set_loss" for (_, k, _) in plan.injected)
    sys_.shutdown()


def test_swap_survives_worker_kill_in_window():
    from repro.arch.failover import FailoverRedis

    with default_engine(_engine):
        svc = FailoverRedis(seed=7, timeout=2.0)
    sys_ = svc.system
    submitted, completed = [], []

    for i in range(3):
        _submit(svc, i, submitted, completed)
        sys_.run_until(sys_.now + 1.5)

    plan = FaultPlan(sys_)
    # SIGKILL the *surviving* replica's worker mid-transition: the
    # quiesce needs up to one reactivate window (3*t = 6.0s), so +6.5
    # aims the kill at the cutover/spawn stretch of the swap
    plan.kill_process_at(sys_.now + 6.5, "b1")
    for j, off in enumerate((0.0, 1.0)):
        sys_.clock.call_after(
            off, lambda i=3 + j: _submit(svc, i, submitted, completed)
        )

    rep = svc.swap_backend("b2", "b3", quiesce_grace=10.0)
    assert rep.ok or rep.rolled_back, rep.reason
    sys_.run_until(sys_.now + 30.0)  # backoff + restart + re-register

    # health check, event-driven: wait for a replica to re-register,
    # then prove the service completes new work.  A couple of attempts,
    # because on a loaded host a single fan-out can still time out
    # against the 2s window even with every replica healthy.
    deadline = sys_.now + 60.0
    while not svc.registered_backends() and sys_.now < deadline:
        sys_.run_until(sys_.now + 5.0)
    assert svc.registered_backends()
    healthy = False
    n = 5
    for _ in range(3):
        _submit(svc, n, submitted, completed)
        n += 1
        sys_.run_until(sys_.now + 4.0)
        if completed and completed[-1] == (n - 1, True):
            healthy = True
            break
    sys_.run_until(sys_.now + 15.0)
    assert healthy, completed

    _exactly_once(submitted, completed)
    sup = sys_.engine.supervisor
    st = sup.statuses["b1"]
    assert st.crashes >= 1 and st.restarts >= 1
    assert st.state is WorkerState.RUNNING
    assert sup.report().recovered()
    assert any(k == "kill_process" for (_, k, _) in plan.injected)
    assert not sys_.failures
    sys_.shutdown()
