"""Zero-drop for the broker's partition-count change, on every engine.

Same harness shape as ``test_zero_drop.py``: publishes land before,
inside and after ``reconfigure_partitions(2 → 3)``, and every one must
complete exactly once with ``ok=True``.  After the transition every
record must survive in exactly one partition log — re-placed under the
new mapping by the transfer, except that an in-flight window publish
may land per its pre-quiesce routing.
"""

import pytest

from repro.arch.broker import ShardedBroker
from repro.brokerlite import BrokerRequest, partition_for
from repro.runtime import RealtimeEngine, default_engine
from repro.runtime.cluster import ClusterEngine
from repro.runtime.supervisor import WorkerState

SCALE = 0.02
HB = dict(heartbeat_interval=0.5, heartbeat_timeout=2.0)
#: generous request deadline — the guarantee is no-drop, not latency
#: (see test_zero_drop.py for the cluster-transition rationale)
TIMEOUT = 60.0

ENGINES = {
    "sim": None,
    "realtime": lambda: RealtimeEngine(time_scale=SCALE),
    "cluster": lambda: ClusterEngine(time_scale=SCALE, **HB),
}

WINDOW_OFFSETS = (0.0, 0.3, 1.0, 2.5)


def drive_through_repartition(svc):
    sys_ = svc.system
    clock = sys_.clock
    submitted = []
    completed = []

    def submit(i):
        submitted.append(i)
        svc.submit(
            BrokerRequest(op="PUB", partition=0, key=f"k{i}", value=b"%d" % i),
            lambda r, i=i: completed.append((i, bool(r.ok))),
        )

    for i in range(4):
        submit(i)
        sys_.run_until(sys_.now + 1.5)

    # these fire while reconfigure_partitions() is blocking the caller
    for j, off in enumerate(WINDOW_OFFSETS):
        clock.call_after(off, lambda i=4 + j: submit(i))

    rep = svc.reconfigure_partitions(3)
    assert rep.ok, rep.reason
    sys_.run_until(sys_.now + 10.0)

    for i in range(8, 12):
        submit(i)
        sys_.run_until(sys_.now + 1.5)
    sys_.run_until(sys_.now + 15.0)
    return submitted, completed


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_broker_repartition_zero_drop(engine):
    factory = ENGINES[engine]
    if factory is None:
        svc = ShardedBroker(n_partitions=2, seed=0, timeout=TIMEOUT)
    else:
        with default_engine(factory):
            svc = ShardedBroker(n_partitions=2, seed=0, timeout=TIMEOUT)

    submitted, completed = drive_through_repartition(svc)

    ids = [i for i, _ in completed]
    assert sorted(ids) == sorted(submitted), (
        f"dropped: {set(submitted) - set(ids)}, "
        f"duplicated: {[i for i in set(ids) if ids.count(i) > 1]}"
    )
    failed = [i for i, ok in completed if not ok]
    assert not failed, f"publishes failed: {failed}"
    assert not svc.system.failures
    assert svc.n_partitions == 3

    # nothing was lost in the transfer, and every record sits where
    # either epoch's router puts it: pre-transition records were
    # re-placed under the new mapping, post-transition records routed
    # under it directly — but a window publish routed just before
    # cutover may complete on its old-epoch partition (in-flight ops
    # keep their routing; the guarantee is no-drop, not re-routing)
    assert svc.records_stored() == len(submitted)
    window_keys = {f"k{i}" for i in range(4, 8)}
    for p in range(3):
        for rec in svc.server(p).partition(p).records:
            allowed = {partition_for(rec.key, 3)}
            if rec.key in window_keys:
                allowed.add(partition_for(rec.key, 2))
            assert p in allowed, f"{rec.key} in partition {p}, allowed {allowed}"

    if engine == "cluster":
        sup = svc.system.engine.supervisor
        assert sup.report().recovered()
        assert sup.statuses["Bck3"].state is WorkerState.RUNNING
    svc.system.shutdown()
