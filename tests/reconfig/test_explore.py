"""Schedule exploration over the transition window.

The reconfig scenario submits client updates timed to land *inside*
the quiesce window (one scheduled at the exact moment the transition
begins, one 2ms later), then reshards 2 → 3 while they are in flight.
Exploration varies the interleaving of deliveries, timers and host
steps across that window; on every schedule the ``reconfig-no-drop``
invariant must hold — no request dropped, none duplicated, and the
transition itself completed.
"""

import pytest

from repro.explore import INVARIANTS, explore, make_reconfig_scenario
from repro.explore.invariants import check_invariants


def test_invariant_registered():
    assert "reconfig-no-drop" in INVARIANTS
    assert INVARIANTS["reconfig-no-drop"].description


def test_invariant_flags_drops_and_duplicates():
    obs = {
        "submitted": [0, 1, 2],
        "completed": [0, 2, 2, 3],
        "failed": [(1, "timeout")],
        "reconfig_ok": False,
        "reconfig_reason": "quiesce timed out",
    }
    msgs = check_invariants(None, obs, ["reconfig-no-drop"])
    text = "\n".join(m for _, m in msgs)
    assert "did not complete" in text
    assert "dropped" in text
    assert "more than once" in text
    assert "unsubmitted" in text
    assert "request 1 failed" in text


def test_invariant_passes_clean_observation():
    obs = {
        "submitted": [0, 1],
        "completed": [1, 0],
        "failed": [],
        "reconfig_ok": True,
    }
    assert check_invariants(None, obs, ["reconfig-no-drop"]) == []


@pytest.mark.parametrize("strategy", ("dpor", "random"))
def test_explore_transition_window(strategy):
    sc = make_reconfig_scenario()
    assert "reconfig-no-drop" in sc.invariants
    res = explore(sc, strategy=strategy, budget=20, seed=0)
    assert res.runs > 1
    assert res.violations == []
    assert res.ok


def test_explore_via_cli_target():
    """`repro explore reconfig` resolves to the reconfig scenario."""
    from repro.explore import resolve_scenario

    sc = resolve_scenario("reconfig")
    assert sc.name == "reconfig"
    assert "reconfig-no-drop" in sc.invariants
