"""Differential reconfiguration harness: a system reconfigured *live*
must be indistinguishable from a system freshly started on the target
architecture.

Every case drives the same two-part client workload:

* part 1 runs on the old architecture;
* the live run then applies the transition (``System.reconfigure`` via
  the architecture wrapper), while the fresh run — already on the new
  architecture — just idles the same settle window;
* part 2 runs on the new architecture.

Then the client-observable history (untimed ``(op, key, value, ok)``
tuples) and the final client-visible KV state must be byte-identical
between the two runs, with zero failures in both.  For the sharded
store the comparison includes per-shard *placement* — the transfer
step must land every key exactly where the fresh chooser would.

Eight transitions across seven shipped architectures, on the sim
engine and the realtime engine:

* ``sharding`` reshard 2 → 4 and ``parallel_sharding`` pool 2 → 3
  (instance adds + state transfer);
* ``failover`` / ``failover_fast`` replica swap b2 → b3 (instance
  remove + add; the fresh run starts from the swapped source);
* ``caching`` / ``migration`` / ``checkpointing`` main-argument change
  (timeout 0.5 → 0.8: same topology, every junction rebinds).
"""

import pytest

from repro.redislite import Command
from repro.runtime import RealtimeEngine, default_engine

#: wall seconds per logical second on the realtime engine
SCALE = 0.02

PART1 = (("SET", "a", b"1"), ("SET", "b", b"x"))
PART2 = (
    ("SET", "c", b"2"),
    ("SET", "a", b"3"),
    ("GET", "a", None),
    ("GET", "b", None),
    ("GET", "c", None),
)
KEYS = ("a", "b", "c")


def drive(svc, ops, hist):
    sys_ = svc.system
    for kind, key, value in ops:
        cmd = Command(kind, key, value) if value is not None else Command(kind, key)

        def done(reply, k=kind, ky=key):
            hist.append((k, ky, reply.value, bool(reply.ok)))

        svc.submit(cmd, done)
        sys_.run_until(sys_.now + 2.0)


def settle(svc):
    svc.system.run_until(svc.system.now + 5.0)


def store_contents(app):
    """A backend's client-visible KV contents: key → value."""
    snap = app.payload.store.snapshot()
    return {k: rec["value"] for k, rec in snap["entries"].items()}


# ---------------------------------------------------------------------------
# per-architecture cases: run(reconfig) -> (observation, n_failures)
# ---------------------------------------------------------------------------


def _sharding(reconfig):
    from repro.arch.sharding import ShardedRedis

    hist = []
    svc = ShardedRedis(n_shards=2 if reconfig else 4, seed=0)
    drive(svc, PART1, hist)
    if reconfig:
        rep = svc.reconfigure_shards(4)
        assert rep.ok, rep.reason
    settle(svc)
    drive(svc, PART2, hist)
    settle(svc)
    placement = {
        b: sorted(store_contents(svc.backend_app(i)))
        for i, b in enumerate(svc.backends)
    }
    state = {}
    for i in range(svc.n_shards):
        state.update(store_contents(svc.backend_app(i)))
    return (hist, placement, state), len(svc.system.failures)


def _parallel_sharding(reconfig):
    from repro.arch.sharding import ParallelShardedRedis

    hist = []
    # generous timeout: at SCALE the default 0.5 logical seconds is
    # 10ms of wall tolerance, inside scheduler-jitter range
    svc = ParallelShardedRedis(n_backends=2 if reconfig else 3, seed=0, timeout=2.0)
    drive(svc, PART1, hist)
    if reconfig:
        rep = svc.reconfigure_backends(3)
        assert rep.ok, rep.reason
    settle(svc)
    drive(svc, PART2, hist)
    settle(svc)
    # replicated: every backend holds the full copy.  The swapped-in
    # replica received part 1 by state transfer, part 2 by traffic.
    replicas = [store_contents(svc.backend_app(i)) for i in range(svc.n_backends)]
    return (hist, svc.active_backends(), replicas), len(svc.system.failures)


def _failover(reconfig, *, fast=False, timeout=0.5):
    from repro.arch.failover import (
        FailoverRedis,
        FastFailoverRedis,
        swap_backend_program,
    )

    cls = FastFailoverRedis if fast else FailoverRedis
    program_name = "failover_fast" if fast else "failover"
    hist = []
    if reconfig:
        svc = cls(seed=0, timeout=timeout)
    else:
        svc = cls(
            seed=0,
            timeout=timeout,
            program=swap_backend_program(program_name=program_name),
        )
    drive(svc, PART1, hist)
    if reconfig:
        # grace must outlast one reactivate watchdog window (3*t)
        rep = svc.swap_backend("b2", "b3", quiesce_grace=6.0 * timeout + 2.0)
        assert rep.ok, rep.reason
    settle(svc)
    drive(svc, PART2, hist)
    settle(svc)
    # b1 served both parts in both runs; b3's copy differs by design
    # (fresh saw part 1, swapped-in did not), so the state comparison
    # is the survivor's store plus the registration set.
    b1 = store_contents(svc.system.instance("b1").app)
    return (hist, svc.registered_backends(), b1), len(svc.system.failures)


def _timeout_change(reconfig, build, get_server):
    """Same topology, new main argument (timeout 0.5 → 0.8)."""
    hist = []
    svc = build(0.5 if reconfig else 0.8)
    drive(svc, PART1, hist)
    if reconfig:
        rep = svc.system.reconfigure(main_args={"t": 0.8})
        assert rep.ok, rep.reason
    settle(svc)
    drive(svc, PART2, hist)
    settle(svc)
    snap = {
        k: rec["value"]
        for k, rec in get_server(svc).store.snapshot()["entries"].items()
    }
    return (hist, snap), len(svc.system.failures)


def _caching(reconfig):
    from repro.arch.caching import CachedRedis

    return _timeout_change(
        reconfig,
        lambda t: CachedRedis(capacity=8, seed=0, timeout=t),
        lambda svc: svc.server,
    )


def _migration(reconfig):
    from repro.arch.migration import MigratableRedis

    return _timeout_change(
        reconfig,
        lambda t: MigratableRedis(seed=0, timeout=t),
        lambda svc: svc.node_server(svc.front.active),
    )


def _checkpointing(reconfig):
    from repro.arch.checkpointing import CheckpointedService
    from repro.redislite import DirectPort, RedisServer

    hist = []
    server = RedisServer()
    ref = {}
    svc = CheckpointedService(
        server, stall=lambda d: ref["p"].stall(d), timeout=0.5 if reconfig else 0.8
    )
    ref["p"] = DirectPort(svc.system.clock, server)
    sys_ = svc.system
    for kind, key, value in PART1:
        server.execute(Command(kind, key, value))
    svc.checkpoint_now()
    sys_.run_until(sys_.now + 5.0)
    if reconfig:
        rep = sys_.reconfigure(main_args={"t": 0.8})
        assert rep.ok, rep.reason
    sys_.run_until(sys_.now + 5.0)
    for kind, key, value in PART2:
        if value is not None:
            server.execute(Command(kind, key, value))
    svc.checkpoint_now()
    sys_.run_until(sys_.now + 10.0)
    snap = {
        k: rec["value"] for k, rec in server.store.snapshot()["entries"].items()
    }
    return (hist, svc.checkpoints, snap), len(sys_.failures)


CASES = {
    "sharding": _sharding,
    "parallel_sharding": _parallel_sharding,
    "failover": lambda r: _failover(r, fast=False),
    "failover_fast": lambda r: _failover(r, fast=True),
    "caching": _caching,
    "migration": _migration,
    "checkpointing": _checkpointing,
}

#: realtime overrides: the failover timeout widens from 0.5 to 2.0
#: logical seconds — at SCALE the default is 10ms of wall tolerance,
#: inside scheduler-jitter range under CI load (the sim keeps the
#: shipped default; it has no jitter)
CASES_REALTIME = dict(
    CASES,
    failover=lambda r: _failover(r, fast=False, timeout=2.0),
    failover_fast=lambda r: _failover(r, fast=True, timeout=2.0),
)


def run_case(name, reconfig, engine=None, cases=CASES):
    if engine is None:
        return cases[name](reconfig)
    with default_engine(engine):
        return cases[name](reconfig)


@pytest.mark.parametrize("arch", sorted(CASES))
def test_differential_sim(arch):
    live, live_failures = run_case(arch, reconfig=True)
    fresh, fresh_failures = run_case(arch, reconfig=False)
    assert live_failures == fresh_failures == 0
    assert live == fresh


#: on a wall clock the fan-out reply race is timing-sensitive once the
#: replicas diverge (the swapped-in b3 never saw part 1), so the
#: realtime failover comparison drops GET reply *values* and keeps
#: per-op success, the registration set and the survivor's store —
#: the same weakening the engine parity suite applies to failover.
VALUE_RACY = ("failover", "failover_fast")


def weaken(arch, obs):
    if arch not in VALUE_RACY:
        return obs
    hist, registered, b1 = obs
    return ([(k, ky, ok) for (k, ky, _v, ok) in hist], registered, b1)


@pytest.mark.parametrize("arch", sorted(CASES))
def test_differential_realtime(arch):
    engine = lambda: RealtimeEngine(time_scale=SCALE)  # noqa: E731
    # both arms run on a wall clock, so a loaded CI host can stall
    # either past an architecture timeout window; retry the whole
    # comparison a couple of times — a real reconfiguration defect is
    # deterministic and fails every attempt
    for _ in range(2):
        live, live_failures = run_case(
            arch, reconfig=True, engine=engine, cases=CASES_REALTIME
        )
        fresh, fresh_failures = run_case(
            arch, reconfig=False, engine=engine, cases=CASES_REALTIME
        )
        if (
            live_failures == fresh_failures == 0
            and weaken(arch, live) == weaken(arch, fresh)
        ):
            return
    assert live_failures == fresh_failures == 0
    assert weaken(arch, live) == weaken(arch, fresh)


def test_sharding_transfer_matches_fresh_placement():
    """The transfer step must land every key exactly where the fresh
    4-shard chooser puts it — checked key by key."""
    (_, live_placement, live_state), _ = run_case("sharding", reconfig=True)
    (_, fresh_placement, fresh_state), _ = run_case("sharding", reconfig=False)
    assert live_state == fresh_state == {"a": b"3", "b": b"x", "c": b"2"}
    assert live_placement == fresh_placement


def test_reshard_crosses_differing_slot_layouts():
    """The pool 2 → 3 reconfiguration rebinds the front-end against a
    program with *more* declared keys (the per-backend props and the
    ``tgt`` subset membership expand over the pool), so the old and new
    tables have different key→slot layouts — the restore path must
    translate state by name, never by slot index."""
    from repro.arch.sharding import ParallelShardedRedis

    hist = []
    svc = ParallelShardedRedis(n_backends=2, seed=0, timeout=2.0)
    jr = svc.system.junction("Fnt::junction")
    old_table = jr.table
    old_index = dict(old_table.layout.index)
    drive(svc, PART1, hist)
    rep = svc.reconfigure_backends(3)
    assert rep.ok, rep.reason
    settle(svc)
    new_table = svc.system.junction("Fnt::junction").table
    new_index = dict(new_table.layout.index)
    assert new_table is not old_table
    # the pool grew: new per-backend keys exist only in the new layout
    assert set(new_index) - set(old_index)
    # and surviving keys moved to different slots, so a transfer done
    # by slot index (rather than by name) could not have been correct
    moved = [k for k in old_index if new_index.get(k, old_index[k]) != old_index[k]]
    assert moved, (old_index, new_index)
    drive(svc, PART2, hist)
    settle(svc)
    assert not svc.system.failures
    assert all(ok for (_, _, _v, ok) in hist), hist
