"""Analyzer corpus: each ``corpus/*.csaw`` fixture carries an
``.expected.json`` sidecar listing every finding the analyzer must
produce for it — no more, no fewer.  The projection compared is
(check, kind, severity, node, key, suppressed); messages and witnesses
are free to improve without touching the sidecars."""

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_source

CORPUS = Path(__file__).parent / "corpus"
FIXTURES = sorted(CORPUS.glob("*.csaw"))


def _analyze(path: Path):
    return analyze_source(path.read_text(), label=path.name)


def _projection(report):
    return [
        {
            "check": f.check,
            "kind": f.kind,
            "severity": f.severity,
            "node": f.node,
            "key": f.key,
            "suppressed": f.suppressed,
        }
        for f in report.sorted()
    ]


def test_corpus_is_nonempty():
    assert FIXTURES, "corpus directory is empty"
    for path in FIXTURES:
        assert path.with_suffix(".expected.json").exists(), path.name


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_expected_findings(path):
    expected = json.loads(path.with_suffix(".expected.json").read_text())
    assert _projection(_analyze(path)) == expected["findings"]


def _one(name: str, kind: str):
    found = [f for f in _analyze(CORPUS / name).findings if f.kind == kind]
    assert len(found) == 1, found
    return found[0]


def test_seeded_race_has_witness_interleaving():
    race = _one("seeded_race.csaw", "concurrent-write-race")
    assert len(race.sites) == 2
    assert race.witness, "race finding must carry a witness schedule"
    assert "races the previous write" in race.witness[-1]
    assert any("Flag" in step for step in race.witness)


def test_cross_race_names_both_writers():
    race = _one("cross_race.csaw", "write-write-race")
    assert race.severity == "error"
    assert "a::j" in race.message and "b::j" in race.message
    assert len(race.sites) == 2
    assert race.witness


def test_suppression_names_the_directive():
    race = _one("suppressed_race.csaw", "concurrent-write-race")
    assert race.suppressed
    assert race.suppressed_by == "allow-race Flag"


def test_clean_fixture_has_no_findings():
    assert _analyze(CORPUS / "clean.csaw").findings == []


def test_json_schema_projection():
    report = _analyze(CORPUS / "contract.csaw")
    doc = report.to_json()
    assert doc["version"] == 1
    assert doc["summary"]["total"] == len(report.findings)
    for f in doc["findings"]:
        assert {"check", "kind", "severity", "node", "key", "message",
                "sites"} <= set(f)
