"""CLI surface of the analyzer: ``repro analyze`` over all three input
modes (architecture name, ``.csaw`` file, ``.py`` script) and the fast
subset folded into ``repro check --strict``."""

import json
from pathlib import Path

import pytest

from repro.cli import main

CORPUS = Path(__file__).parent / "corpus"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestAnalyze:
    def test_race_fixture_text_output(self, capsys):
        assert main(["analyze", str(CORPUS / "seeded_race.csaw")]) == 0
        out = capsys.readouterr().out
        assert "concurrent-write-race" in out
        assert "witness:" in out

    def test_fail_on_race_exits_2(self, capsys):
        rc = main([
            "analyze", str(CORPUS / "seeded_race.csaw"), "--fail-on", "race",
        ])
        assert rc == 2
        assert "failing finding(s)" in capsys.readouterr().err

    def test_fail_on_ignores_other_checks(self):
        rc = main([
            "analyze", str(CORPUS / "seeded_race.csaw"), "--fail-on", "dead",
        ])
        assert rc == 0

    def test_suppressed_finding_does_not_fail(self):
        rc = main([
            "analyze", str(CORPUS / "suppressed_race.csaw"),
            "--fail-on", "race",
        ])
        assert rc == 0

    def test_clean_fixture_all_checks(self):
        rc = main([
            "analyze", str(CORPUS / "clean.csaw"),
            "--fail-on", "race,dead,contract,unused",
        ])
        assert rc == 0

    def test_json_output(self, capsys):
        assert main([
            "analyze", str(CORPUS / "contract.csaw"), "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        kinds = {f["kind"] for f in doc["findings"]}
        assert {"host-undeclared-state", "undeclared-remote-key"} <= kinds

    def test_architecture_by_name(self):
        rc = main(["analyze", "failover", "--fast", "--fail-on", "race,contract"])
        assert rc == 0

    def test_example_script_capture(self, capsys):
        rc = main([
            "analyze", str(EXAMPLES / "quickstart.py"),
            "--fail-on", "race,contract",
        ])
        assert rc == 0

    def test_bad_fail_on_value(self):
        with pytest.raises(SystemExit, match="--fail-on accepts"):
            main(["analyze", str(CORPUS / "clean.csaw"), "--fail-on", "bogus"])


class TestCheckStrict:
    def test_contract_violation_exits_2(self, capsys):
        rc = main(["check", str(CORPUS / "contract.csaw"), "--strict"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "host-undeclared-state" in out

    def test_clean_exits_0(self):
        assert main(["check", str(CORPUS / "clean.csaw"), "--strict"]) == 0

    def test_strict_skips_deep_pass(self, capsys):
        # the seeded race needs the event-structure pass; --strict runs
        # only the fast key-flow subset and must not flag it
        rc = main(["check", str(CORPUS / "seeded_race.csaw"), "--strict"])
        assert rc == 0
        assert "concurrent-write-race" not in capsys.readouterr().out
