"""Regression sweep: the analyzer reports no unsuppressed errors for
any shipped architecture or example script.

Every accepted hazard in ``src/repro/arch/dsl/*.csaw`` is annotated
with an ``# analyze:`` directive in the source; anything new that the
analyzer flags as an error fails here first."""

import contextlib
import io
import runpy
from pathlib import Path

import pytest

from repro.analysis import analyze_program, analyze_source
from repro.analysis.capture import capture_programs
from repro.arch.loader import ARCHITECTURES, load_source

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "watched_failover.py",
    "elastic_workers.py",
    "curl_auditing.py",
    "live_migration.py",
)
SLOW_EXAMPLES = (
    "redis_checkpointing.py",
    "redis_sharding.py",
    "suricata_failover.py",
)


def _errors(report):
    return [f for f in report.unsuppressed() if f.severity == "error"]


def _fmt(findings):
    return "\n".join(f"{f.kind} at {f.node} (key {f.key!r})" for f in findings)


@pytest.mark.parametrize("name", ARCHITECTURES)
def test_architecture_has_no_unsuppressed_errors(name):
    report = analyze_source(load_source(name), label=name)
    assert _errors(report) == [], _fmt(_errors(report))


def _analyze_example(filename):
    with capture_programs() as captured, contextlib.redirect_stdout(io.StringIO()):
        runpy.run_path(str(EXAMPLES / filename), run_name="__main__")
    assert captured, f"{filename} constructed no System"
    reports = [
        analyze_program(prog, label=f"{filename}#{i}")
        for i, prog in enumerate(captured)
    ]
    for report in reports:
        assert _errors(report) == [], f"{report.source}:\n{_fmt(_errors(report))}"


@pytest.mark.parametrize("filename", FAST_EXAMPLES)
def test_example_has_no_unsuppressed_errors(filename):
    _analyze_example(filename)


@pytest.mark.slow
@pytest.mark.parametrize("filename", SLOW_EXAMPLES)
def test_slow_example_has_no_unsuppressed_errors(filename):
    _analyze_example(filename)


def test_example_list_is_exhaustive():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
