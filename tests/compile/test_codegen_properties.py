"""Property-based tests (hypothesis) for the junction compiler.

Two properties anchor the compiler (ISSUE 7):

* **byte-stable codegen** — generating code for the same input twice
  yields the identical source string, at the formula level and for every
  junction of a rebuilt system.  The generated modules are build
  artifacts; reproducible builds require reproducible sources.
* **compiled-vs-interpreted equivalence** — a compiled pure formula
  computes exactly :func:`repro.core.formula.evaluate`'s three-valued
  result over arbitrary (including garbage) value maps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import compilation, formula_function, generated_source, is_pure
from repro.core.formula import (
    And,
    FalseF,
    Implies,
    Not,
    Or,
    Prop,
    UNKNOWN,
    evaluate,
)

PROPS = ["Req", "Ack", "Done", "Err"]


def formulas():
    base = st.sampled_from([Prop(p) for p in PROPS] + [FalseF()])
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.builds(Not, inner),
            st.builds(And, inner, inner),
            st.builds(Or, inner, inner),
            st.builds(Implies, inner, inner),
        ),
        max_leaves=12,
    )


#: value maps with deliberate junk — the lowering must normalize
#: anything that is not the ``True``/``False`` singletons to UNKNOWN,
#: exactly as the interpreter's prop environment does
value_maps = st.dictionaries(
    st.sampled_from(PROPS),
    st.sampled_from([True, False, UNKNOWN, None, 1, 0, "yes"]),
)


def _compile_formula(f):
    src = formula_function("_g", f)
    ns = {"UNKNOWN": UNKNOWN}
    exec(compile(src, "<formula>", "exec"), ns)
    return src, ns["_g"]


def _env(values):
    def env(key):
        v = values.get(key)
        return v if (v is True or v is False) else UNKNOWN

    return env


class TestFormulaCodegen:
    @given(f=formulas(), values=value_maps)
    @settings(max_examples=200, deadline=None)
    def test_matches_three_valued_evaluate(self, f, values):
        assert is_pure(f, frozenset())
        _, fn = _compile_formula(f)
        assert fn(values) is evaluate(f, _env(values))

    @given(f=formulas())
    @settings(max_examples=100, deadline=None)
    def test_source_is_byte_stable(self, f):
        assert formula_function("_g", f) == formula_function("_g", f)

    @given(f=formulas())
    @settings(max_examples=100, deadline=None)
    def test_compiles_clean(self, f):
        """Every pure formula lowers to syntactically valid Python."""
        src, fn = _compile_formula(f)
        assert callable(fn) and "def _g(" in src


class TestSystemCodegenStability:
    """Rebuilding the same architecture produces byte-identical
    generated modules for every junction — the codegen closes over
    nothing run-dependent (no ids, no addresses, no dict-order)."""

    @pytest.mark.parametrize("arch", ["failover", "caching", "migration"])
    def test_rebuild_is_byte_stable(self, arch):
        from repro.explore.scenarios import arch_scenario

        def sources():
            with compilation(True):
                system = arch_scenario(arch).run()
            return {
                jr.node: generated_source(system, jr.node)
                for inst in system.instances.values()
                for jr in inst.junctions.values()
                if jr.code is not None
            }

        first, second = sources(), sources()
        assert first and first == second
