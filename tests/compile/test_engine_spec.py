"""EngineSpec: the one value that says how a System executes.

Covers the textual form, round-tripping, uniform acceptance by
``System`` (spec string / EngineSpec / explicit kwarg precedence), and
the CLI's deprecated per-flag shims (``--time-scale``, ``--workers``)
folding into a spec with a DeprecationWarning.
"""

import argparse

import pytest

from repro.cli import _engine_spec
from repro.core.compiler import compile_program
from repro.runtime.engine import EngineSpec
from repro.runtime.system import System

SRC = """
instance_types { T }
instances { t: T }
def main(x) = start t(x)
def T::j(x) =
  | init prop !Go
  skip
"""


def _system(**kw):
    return System(compile_program(SRC), **kw)


class TestParse:
    def test_bare_name(self):
        assert EngineSpec.parse("sim") == EngineSpec()

    def test_options(self):
        spec = EngineSpec.parse("realtime,time_scale=0.05,compiled=off")
        assert spec.name == "realtime"
        assert spec.time_scale == 0.05
        assert spec.compiled is False

    def test_workers_and_passthrough(self):
        spec = EngineSpec.parse("cluster,workers=4,heartbeat_timeout=2.5")
        assert spec.workers == 4
        assert spec.options == (("heartbeat_timeout", 2.5),)

    def test_leading_option_defaults_name_to_sim(self):
        assert EngineSpec.parse("compiled=on").name == "sim"

    @pytest.mark.parametrize("bad", ["", "sim,compiled=maybe", "sim,oops"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            EngineSpec.parse(bad)

    @pytest.mark.parametrize(
        "text",
        ["sim", "sim,compiled=off", "realtime,time_scale=0.05", "cluster,workers=4"],
    )
    def test_str_round_trips(self, text):
        spec = EngineSpec.parse(text)
        assert EngineSpec.parse(str(spec)) == spec

    def test_of(self):
        assert EngineSpec.of(None) == EngineSpec()
        spec = EngineSpec(name="realtime")
        assert EngineSpec.of(spec) is spec
        assert EngineSpec.of("sim,compiled=on").compiled is True
        with pytest.raises(TypeError):
            EngineSpec.of(42)


class TestSystemAcceptance:
    def test_spec_string_selects_compile_mode(self):
        assert _system(engine="sim,compiled=off")._compiled is False
        assert _system(engine="sim,compiled=on")._compiled is True

    def test_engine_spec_value(self):
        assert _system(engine=EngineSpec(compiled=False))._compiled is False

    def test_explicit_kwarg_beats_spec(self):
        sys_ = _system(engine="sim,compiled=off", compiled=True)
        assert sys_._compiled is True


class TestCliShims:
    def test_time_scale_flag_warns_and_folds(self):
        args = argparse.Namespace(engine="realtime", time_scale=0.25)
        with pytest.warns(DeprecationWarning, match="--time-scale is deprecated"):
            spec = _engine_spec(args, command="run")
        assert spec.name == "realtime"
        assert spec.time_scale == 0.25

    def test_workers_flag_warns_and_folds(self):
        args = argparse.Namespace(engine="cluster", workers=3)
        with pytest.warns(DeprecationWarning, match="--workers is deprecated"):
            spec = _engine_spec(args, command="cluster")
        assert spec.workers == 3

    def test_engine_option_wins_over_deprecated_flag(self):
        args = argparse.Namespace(engine="cluster,workers=8", workers=3)
        with pytest.warns(DeprecationWarning):
            spec = _engine_spec(args, command="cluster")
        assert spec.workers == 8

    def test_no_flags_no_warning(self):
        import warnings

        args = argparse.Namespace(engine="sim")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _engine_spec(args, command="run") == EngineSpec()
