"""Differential harness: compiled junctions vs the tree-walking
interpreter.

The compiler's correctness bar (ISSUE 7) is *byte-identical telemetry*:
for every shipped architecture, the same seeded workload driven through
a compiled system and an interpreted system must export the same JSONL
trace — same events, same order, same simulated timestamps, same
payloads.  Anything the compiler reorders, skips, or double-emits shows
up as a byte diff here.

The workloads are the exploration scenarios (one per shipped
architecture, deterministic by construction) plus the failover chaos
soak, which layers seeded crash storms and loss bursts on top.
"""

import pytest

from repro.compile import compilation
from repro.explore.scenarios import _ARCH_SCENARIOS, arch_scenario
from tests.arch.test_chaos_soak import _failover_soak


def _junction_codes(system):
    return [
        jr.code
        for inst in system.instances.values()
        for jr in inst.junctions.values()
    ]


def _run(name, compiled):
    with compilation(compiled):
        return arch_scenario(name).run()


@pytest.mark.parametrize("name", sorted(_ARCH_SCENARIOS))
def test_telemetry_byte_identical(name):
    interp = _run(name, compiled=False)
    comp = _run(name, compiled=True)

    # Non-vacuity: the compiled run must actually have compiled
    # junctions (and the interpreted run none), otherwise this test
    # compares the interpreter against itself.
    assert all(c is None for c in _junction_codes(interp))
    n_compiled = sum(c is not None for c in _junction_codes(comp))
    assert n_compiled > 0, f"{name}: no junction was compiled"

    a = interp.telemetry.export("jsonl").encode()
    b = comp.telemetry.export("jsonl").encode()
    assert a == b, f"{name}: compiled telemetry diverges from interpreted"


def test_all_shipped_junctions_compile():
    """Coverage floor: across the shipped architectures every bound
    junction lowers — nothing silently falls back to the interpreter.
    If a future construct lands outside the lowering, shrink this to a
    named allowlist rather than deleting it."""
    fallbacks = []
    for name in sorted(_ARCH_SCENARIOS):
        system = _run(name, compiled=True)
        for inst in system.instances.values():
            for jr in inst.junctions.values():
                if jr.body is not None and jr.code is None:
                    fallbacks.append(f"{name}:{jr.node}")
    assert fallbacks == []


def test_chaos_soak_differential():
    """The full failover chaos digest (reply stream, fault schedule,
    invariant checks, retransmit counts, telemetry bytes) is identical
    under both evaluators — compiled bodies consume the seeded RNG
    streams in exactly the interpreter's order."""
    with compilation(False):
        interp = _failover_soak(2)
    with compilation(True):
        comp = _failover_soak(2)
    assert interp == comp
