"""Well-formedness validation tests."""

import pytest

from repro.core import ast as A
from repro.core.errors import ValidationError
from repro.core.parser import parse_expression, parse_program
from repro.core.validate import (
    collect_declared,
    validate_closed_junction,
    validate_program,
)


def prog(text):
    return parse_program(text)


BOILER = """
instance_types { T, U }
instances { x: T, y: U }
def main() = start x()
"""


class TestProgramValidation:
    def test_valid_program(self):
        validate_program(prog(BOILER + "def T::j() = skip"))

    def test_undeclared_type_for_instance(self):
        p = prog(
            """
            instance_types { T }
            instances { x: Nope }
            def main() = start x()
            """
        )
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_duplicate_instance(self):
        p = prog(
            """
            instance_types { T }
            instances { x: T, x: T }
            def main() = start x()
            """
        )
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_duplicate_instance_names_the_duplicates(self):
        p = prog(
            """
            instance_types { T }
            instances { x: T, y: T, x: T, y: T }
            def main() = start x()
            """
        )
        with pytest.raises(
            ValidationError, match=r"duplicate instance name\(s\): x, y"
        ):
            validate_program(p)

    def test_duplicate_type_names_the_duplicates(self):
        p = prog(
            """
            instance_types { T, U, T }
            instances { x: T }
            def main() = start x()
            """
        )
        with pytest.raises(
            ValidationError, match=r"duplicate instance type name\(s\): T"
        ):
            validate_program(p)

    def test_junction_of_undeclared_type(self):
        p = prog(BOILER + "def Zed::j() = skip")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_duplicate_junction(self):
        p = prog(BOILER + "def T::j() = skip def T::j() = skip")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_main_must_start_something(self):
        p = prog(
            """
            instance_types { T }
            instances { x: T }
            def main() = skip
            """
        )
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_duplicate_declaration_name(self):
        p = prog(BOILER + "def T::j() = | init data n | init data n\n skip")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_two_guards_rejected(self):
        p = prog(BOILER + "def T::j() = | guard A | guard B\n skip")
        with pytest.raises(ValidationError):
            validate_program(p)


class TestSelfCommunication:
    def test_write_to_me_junction_rejected(self):
        p = prog(BOILER + "def T::j() = | init data n\n write(n, me::junction)")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_assert_to_own_qualified_name_rejected(self):
        p = prog(BOILER + "def T::j() = assert[T::j] Work")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_local_assert_allowed(self):
        validate_program(prog(BOILER + "def T::j() = | init prop !W\n assert[] W"))


class TestCaseConstraints:
    def test_only_otherwise_rejected(self):
        # built programmatically: the parser can't even produce this
        c = A.Case((), A.Skip())
        with pytest.raises(ValidationError):
            from repro.core.validate import _validate_expr

            _validate_expr(c, "t", False, None)

    def test_next_before_otherwise_rejected(self):
        p = prog(
            BOILER
            + """def T::j() =
              case { A => skip; next otherwise => skip }"""
        )
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_next_in_middle_allowed(self):
        validate_program(
            prog(
                BOILER
                + """def T::j() =
                  case {
                    A => skip; next
                    B => skip; break
                    otherwise => skip }"""
            )
        )


class TestTransactionConstraints:
    def test_host_in_transaction_rejected(self):
        p = prog(BOILER + "def T::j() = <| host H |>")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_host_in_nested_transaction_rejected(self):
        p = prog(BOILER + "def T::j() = <| { skip; host H } |>")
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_host_outside_transaction_fine(self):
        validate_program(prog(BOILER + "def T::j() = host H; <| skip |>"))


class TestStartValidation:
    def test_mixed_anon_and_named_rejected(self):
        e = A.Start(A.ref("x"), ((None, ()), ("j", ())))
        from repro.core.validate import _validate_expr

        with pytest.raises(ValidationError):
            _validate_expr(e, "main", False, None)

    def test_repeated_junction_group_rejected(self):
        p = prog(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x j() j()
            """
        )
        with pytest.raises(ValidationError):
            validate_program(p)


class TestClosedJunction:
    def _decls(self):
        return (
            A.InitProp("Work", False),
            A.InitData("n"),
            A.IdxDecl("tgt", A.SetLit((A.ref("a"),))),
            A.SetDecl("Backs", A.SetLit((A.ref("a"),))),
        )

    def test_write_of_undeclared_data(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("write(z, a)"))

    def test_write_of_set_rejected(self):
        with pytest.raises(ValidationError):
            validate_closed_junction(
                "t", self._decls(), parse_expression("write(Backs, a)")
            )

    def test_write_of_idx_rejected(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("write(tgt, a)"))

    def test_restore_of_parameter_rejected(self):
        decls = self._decls() + (A.InitData("t0"),)
        with pytest.raises(ValidationError):
            validate_closed_junction(
                "t", decls, parse_expression("restore(t0)"), params=("t0",)
            )

    def test_wait_undeclared_key(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("wait[zzz] Work"))

    def test_wait_undeclared_prop(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("wait[] Nope"))

    def test_wait_prop_under_at_not_checked_locally(self):
        validate_closed_junction(
            "t", self._decls(), parse_expression("wait[] f@RemoteProp || Work")
        )

    def test_host_write_unknown_state(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("host H {zzz}"))

    def test_host_write_idx_allowed(self):
        validate_closed_junction("t", self._decls(), parse_expression("host H {tgt}"))

    def test_keep_undeclared(self):
        with pytest.raises(ValidationError):
            validate_closed_junction("t", self._decls(), parse_expression("keep(zzz)"))

    def test_ok_junction(self):
        validate_closed_junction(
            "t",
            self._decls(),
            parse_expression("save(n); write(n, a); wait[n] !Work; keep(n, Work)"),
        )


class TestCollectDeclared:
    def test_partitions(self):
        decls = (
            A.InitProp("W", False),
            A.InitProp("R", True, A.ref("b1")),
            A.InitData("n"),
            A.SetDecl("S", None),
            A.SubsetDecl("sub", A.ref("S")),
            A.IdxDecl("i", A.ref("S")),
        )
        out = collect_declared(decls)
        assert "W" in out["prop"]
        assert "R[b1]" in out["prop"]
        assert out["data"] == {"n"}
        assert out["set"] == {"S"}
        assert out["subset"] == {"sub"}
        assert out["idx"] == {"i"}
