"""Template expansion: inlining, for unrolling, substitution, me-resolution."""

import pytest

from repro.core import ast as A
from repro.core.errors import ExpansionError
from repro.core.expand import (
    inline_functions,
    resolve_me_expr,
    resolve_me_formula,
    specialize,
    subst_arg,
    subst_expr,
    to_ast_value,
    unroll_expr,
    unroll_formula,
)
from repro.core.formula import And, FalseF, Prop, TRUE
from repro.core.parser import parse_expression, parse_formula


def lit(*names):
    return A.SetLit(tuple(A.ref(n) for n in names))


class TestToAstValue:
    def test_string_becomes_ref(self):
        assert to_ast_value("b1::serve") == A.ref("b1::serve")

    def test_number(self):
        assert to_ast_value(3) == A.Num(3.0)

    def test_list_becomes_setlit(self):
        assert to_ast_value(["a", 1]) == A.SetLit((A.ref("a"), A.Num(1.0)))

    def test_bool_rejected(self):
        with pytest.raises(ExpansionError):
            to_ast_value(True)


class TestSubstitution:
    def test_simple_ref(self):
        assert subst_arg(A.ref("x"), {"x": A.Num(5.0)}) == A.Num(5.0)

    def test_arith_folding(self):
        e = A.BinArith("*", A.Num(3.0), A.ref("t"))
        assert subst_arg(e, {"t": A.Num(2.0)}) == A.Num(6.0)

    def test_qualified_head_substitution(self):
        # b bound to an instance; b::serve becomes inst::serve
        out = subst_arg(A.ref("b::serve"), {"b": A.ref("b1")})
        assert out == A.ref("b1::serve")

    def test_prop_name_substitution(self):
        e = parse_expression("assert[tgt] verdict")
        out = subst_expr(e, {"verdict": A.ref("failover"), "tgt": A.ref("s")})
        assert out == A.Assert(A.ref("s"), "failover", None)

    def test_prop_param_must_be_simple(self):
        e = parse_expression("assert[] verdict")
        with pytest.raises(ExpansionError):
            subst_expr(e, {"verdict": A.ref("a::b")})

    def test_for_var_shadowing(self):
        e = parse_expression("for x in {a} ; write(x, f)")
        out = subst_expr(e, {"x": A.ref("OUTER")})
        # the bound x inside the loop must not be replaced
        assert isinstance(out, A.For)
        assert out.body == A.Write("x", A.ref("f"))


class TestInlining:
    def _prog(self):
        from repro.core.parser import parse_program

        return parse_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def complain() = host Complain; return
            def Init(tgt) =
              | init prop !Started[tgt]
              assert[tgt] Go
            def T::j(t) = Init(x); complain()
            """
        )

    def test_inline_body_and_decls(self):
        p = self._prog()
        body, decls = inline_functions(p.defs[0].body, p.function_map())
        assert decls == (A.InitProp("Started", False, A.ref("x")),)
        assert isinstance(body, A.Seq)
        assert body.items[0] == A.Assert(A.ref("x"), "Go", None)

    def test_unknown_function(self):
        with pytest.raises(ExpansionError):
            inline_functions(A.Call("nope", ()), {})

    def test_wrong_arity(self):
        p = self._prog()
        with pytest.raises(ExpansionError):
            inline_functions(A.Call("Init", ()), p.function_map())

    def test_recursive_template_rejected(self):
        from repro.core.parser import parse_program

        p = parse_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def loop() = loop()
            def T::j() = loop()
            """
        )
        with pytest.raises(ExpansionError):
            inline_functions(p.defs[0].body, p.function_map())

    def test_if_desugars_to_case(self):
        body, _ = inline_functions(parse_expression("if A then skip else retry"), {})
        assert isinstance(body, A.Case)
        assert body.arms[0].terminator == "break"
        assert isinstance(body.otherwise, A.Retry)

    def test_if_without_else(self):
        body, _ = inline_functions(parse_expression("if A then retry"), {})
        assert isinstance(body.otherwise, A.Skip)


class TestForUnrolling:
    def test_seq_unroll(self):
        e = parse_expression("for b in {x, y} ; write(n, b)")
        out = unroll_expr(e, {})
        assert out == A.Seq((A.Write("n", A.ref("x")), A.Write("n", A.ref("y"))))

    def test_par_unroll(self):
        e = parse_expression("for b in {x, y} + skip")
        out = unroll_expr(e, {})
        assert isinstance(out, A.Par)

    def test_singleton_set(self):
        e = parse_expression("for b in {x} ; write(n, b)")
        assert unroll_expr(e, {}) == A.Write("n", A.ref("x"))

    def test_empty_set_is_skip(self):
        e = A.For("b", A.SetLit(()), ";", A.Skip())
        assert unroll_expr(e, {}) == A.Skip()

    def test_otherwise_unroll_right_assoc(self):
        e = parse_expression("for b in {x, y, z} otherwise[t] write(n, b)")
        out = unroll_expr(e, {"t": A.Num(1.0)})
        assert isinstance(out, A.Otherwise)
        assert out.body == A.Write("n", A.ref("x"))
        assert isinstance(out.handler, A.Otherwise)
        assert out.handler.body == A.Write("n", A.ref("y"))
        assert out.handler.handler == A.Write("n", A.ref("z"))

    def test_set_from_env(self):
        e = parse_expression("for b in backs ; write(n, b)")
        out = unroll_expr(e, {"backs": lit("p", "q")})
        assert len(out.items) == 2

    def test_unresolved_set_raises(self):
        e = parse_expression("for b in nowhere ; skip")
        with pytest.raises(ExpansionError):
            unroll_expr(e, {})

    def test_nested_for(self):
        e = parse_expression("for a in {x, y} ; (for b in {u, v} + skip)")
        out = unroll_expr(e, {})
        assert isinstance(out, A.Seq)
        assert all(isinstance(i, A.Par) for i in out.items)

    def test_for_arm_expansion(self):
        e = parse_expression(
            """case {
                for b in {x, y} Init[b] => assert[] Done; break
                otherwise => skip
            }"""
        )
        out = unroll_expr(e, {})
        assert len(out.arms) == 2
        assert out.arms[0].formula == Prop("Init", A.ref("x"))


class TestFormulaUnrolling:
    def test_and_unroll(self):
        f = parse_formula("for b in {x, y} && Ready[b]")
        out = unroll_formula(f, {})
        assert out == And(Prop("Ready", A.ref("x")), Prop("Ready", A.ref("y")))

    def test_or_empty_is_false(self):
        f = A.ForFormula("b", A.SetLit(()), "||", Prop("P", A.ref("b")))
        assert unroll_formula(f, {}) == FalseF()

    def test_and_empty_is_true(self):
        f = A.ForFormula("b", A.SetLit(()), "&&", Prop("P", A.ref("b")))
        assert unroll_formula(f, {}) == TRUE


class TestSpecialize:
    def test_for_init_expands(self):
        decls = (A.ForInit("b", lit("p", "q"), A.InitProp("R", False, A.ref("b"))),)
        _, out = specialize(A.Skip(), decls, {})
        assert out == (
            A.InitProp("R", False, A.ref("p")),
            A.InitProp("R", False, A.ref("q")),
        )

    def test_set_decl_literal_feeds_later_iteration(self):
        decls = (
            A.SetDecl("Backs", lit("p", "q")),
            A.ForInit("b", A.ref("Backs"), A.InitProp("R", False, A.ref("b"))),
        )
        _, out = specialize(A.Skip(), decls, {})
        assert len([d for d in out if isinstance(d, A.InitProp)]) == 2

    def test_set_decl_from_config(self):
        decls = (A.SetDecl("Backs", None),)
        _, out = specialize(A.Skip(), decls, {"Backs": lit("a")})
        assert isinstance(out[0], A.SetDecl)

    def test_set_decl_missing_value(self):
        with pytest.raises(ExpansionError):
            specialize(A.Skip(), (A.SetDecl("Backs", None),), {})

    def test_param_substitution_in_body(self):
        body = parse_expression("write(n, dest)")
        out, _ = specialize(body, (), {"dest": A.ref("Aud")})
        assert out == A.Write("n", A.ref("Aud"))

    def test_guard_unrolled(self):
        decls = (A.Guard(parse_formula("for b in backs || Up[b]")),)
        _, out = specialize(A.Skip(), decls, {"backs": lit("p")})
        assert out[0].formula == Prop("Up", A.ref("p"))


class TestResolveMe:
    def test_me_junction_index(self):
        f = parse_formula("Running[me::junction]")
        out = resolve_me_formula(f, "b1", "serve")
        assert out == Prop("Running", A.ref("b1::serve"))

    def test_me_instance_junction_target(self):
        e = parse_expression("assert[me::instance::reactivate] Recent")
        out = resolve_me_expr(e, "b1", "serve")
        assert out.target == A.ref("b1::reactivate")

    def test_me_instance_at_guard(self):
        f = parse_formula("me::instance::serve@!Active")
        out = resolve_me_formula(f, "b2", "startup")
        assert out.junction == A.ref("b2::serve")

    def test_non_me_untouched(self):
        e = parse_expression("write(n, f::c)")
        assert resolve_me_expr(e, "b1", "serve") == e

    def test_nested_in_case(self):
        e = parse_expression(
            "case { Running[me::junction] => skip; break otherwise => skip }"
        )
        out = resolve_me_expr(e, "b1", "serve")
        assert out.arms[0].formula == Prop("Running", A.ref("b1::serve"))
