"""Compilation pipeline tests."""

import pytest

from repro.core import ast as A
from repro.core.compiler import compile_program
from repro.core.errors import CompileError, ValidationError

SRC = """
instance_types { F, B }
instances { f: F, b1: B, b2: B }

def main(t) = start f(t) + start b1(t) + start b2(t)

def complain() = host Complain; return

def F::j(t) =
  | init prop !Work
  | init data n
  save(n); write(n, b1) otherwise[t] complain()

def B::j(t) =
  | init prop !Work
  | guard Work
  skip
"""


class TestCompile:
    def test_compiles_from_text(self):
        prog = compile_program(SRC)
        assert {j.qualified for j in prog.junctions} == {"F::j", "B::j"}

    def test_functions_inlined(self):
        prog = compile_program(SRC)
        fj = prog.junction("F", "j")
        # no Call nodes remain
        assert not [e for e in A.walk(fj.body) if isinstance(e, A.Call)]
        # complain's body appears inside the otherwise handler
        hosts = [e for e in A.walk(fj.body) if isinstance(e, A.HostBlock)]
        assert any(h.name == "Complain" for h in hosts)

    def test_missing_junction_lookup(self):
        prog = compile_program(SRC)
        with pytest.raises(CompileError):
            prog.junction("F", "nope")

    def test_junctions_of_type(self):
        prog = compile_program(SRC)
        assert len(prog.junctions_of_type("B")) == 1

    def test_validation_runs(self):
        bad = SRC.replace("instances { f: F, b1: B, b2: B }", "instances { f: Zed }")
        with pytest.raises(ValidationError):
            compile_program(bad)

    def test_config_env_lifts_values(self):
        prog = compile_program(SRC, config={"t": 5, "Backs": ["b1", "b2"]})
        env = prog.config_env()
        assert env["t"] == A.Num(5.0)
        assert env["Backs"] == A.SetLit((A.ref("b1"), A.ref("b2")))

    def test_instance_map(self):
        prog = compile_program(SRC)
        assert prog.instance_map()["b2"] == "B"

    def test_compile_parsed_program(self):
        from repro.core.parser import parse_program

        prog = compile_program(parse_program(SRC))
        assert prog.main is not None

    def test_if_desugared(self):
        src = SRC.replace("skip\n", "if Work then skip else skip\n")
        prog = compile_program(src)
        bj = prog.junction("B", "j")
        assert not [e for e in A.walk(bj.body) if isinstance(e, A.If)]
