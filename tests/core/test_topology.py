"""Topology extraction (sec. 8.7) tests."""

from repro.core.compiler import compile_program
from repro.core.topology import topology, topology_edges


def test_fig3_topology():
    prog = compile_program(
        """
        instance_types { TF, TG }
        instances { f: TF, g: TG }
        def main() = start f() + start g()
        def TF::junction() =
          | init prop !Work
          | init data n
          save(n); write(n, g); assert[g] Work; wait[] !Work
        def TG::junction() =
          | init prop !Work
          | init data n
          | guard Work
          retract[f] Work
        """
    )
    assert topology_edges(prog) == {
        ("f::junction", "g::junction"),
        ("g::junction", "f::junction"),
    }


def test_multi_junction_targets():
    prog = compile_program(
        """
        instance_types { F, B }
        instances { f: F, b: B }
        def main() = start f a() c() + start b()
        def F::a() = | init prop !P
          assert[b] P
        def F::c() = skip
        def B::junction() = | init prop !P
          retract[f::a] P
        """
    )
    edges = topology_edges(prog)
    assert ("f::a", "b::junction") in edges
    assert ("b::junction", "f::a") in edges
    assert ("f::c", "b::junction") not in edges


def test_idx_targets_conservative():
    prog = compile_program(
        """
        instance_types { F, B }
        instances { f: F, b1: B, b2: B }
        def main() = start f() + start b1() + start b2()
        def F::junction() =
          | init data n
          | idx tgt of {b1, b2}
          save(n); write(n, tgt)
        def B::junction() = skip
        """
    )
    edges = topology_edges(prog)
    assert ("f::junction", "b1::junction") in edges
    assert ("f::junction", "b2::junction") in edges


def test_graph_node_attributes():
    prog = compile_program(
        """
        instance_types { T }
        instances { x: T }
        def main() = start x()
        def T::j() = skip
        """
    )
    g = topology(prog)
    assert g.nodes["x::j"]["instance"] == "x"
    assert g.nodes["x::j"]["type"] == "T"


def test_self_edges_excluded():
    prog = compile_program(
        """
        instance_types { T }
        instances { x: T }
        def main() = start x()
        def T::j() = | init prop !P
          assert[] P
        """
    )
    assert topology_edges(prog) == set()


def test_failover_topology_shape():
    """The fail-over architecture's topology matches Fig. 8."""
    from repro.arch.loader import load_program

    prog = load_program("failover")
    edges = topology_edges(
        prog, env={"backends": ["b1::serve", "b2::serve"], "t": 1.0}
    )
    # startup registers with f::b
    assert ("b1::startup", "f::b") in edges
    # f::b signals f::c
    assert ("f::b", "f::c") in edges
    # f::c dispatches to backends
    assert ("f::c", "b1::serve") in edges
    assert ("f::c", "b2::serve") in edges
    # serve responds to f::c
    assert ("b1::serve", "f::c") in edges
