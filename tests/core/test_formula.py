"""Formula evaluation, DNF and ternary logic tests."""

import pytest

from repro.core.formula import (
    And,
    At,
    DNF_FALSE,
    DNF_TRUE,
    FalseF,
    Implies,
    Live,
    Not,
    Or,
    Prop,
    TRUE,
    UNKNOWN,
    dnf_to_formula,
    evaluate,
    evaluate_bool,
    propositions,
    to_dnf,
)


def env_of(d):
    return lambda k: d.get(k, UNKNOWN)


class TestEvaluation:
    def test_prop_lookup(self):
        assert evaluate(Prop("A"), env_of({"A": True})) is True
        assert evaluate(Prop("A"), env_of({"A": False})) is False

    def test_false_constant(self):
        assert evaluate(FalseF(), env_of({})) is False

    def test_true_sugar(self):
        assert evaluate(TRUE, env_of({})) is True

    def test_not(self):
        assert evaluate(Not(Prop("A")), env_of({"A": True})) is False

    def test_and_or(self):
        e = env_of({"A": True, "B": False})
        assert evaluate(And(Prop("A"), Prop("B")), e) is False
        assert evaluate(Or(Prop("A"), Prop("B")), e) is True

    def test_implies(self):
        e = env_of({"A": True, "B": False})
        assert evaluate(Implies(Prop("A"), Prop("B")), e) is False
        assert evaluate(Implies(Prop("B"), Prop("A")), e) is True

    def test_indexed_prop_key(self):
        p = Prop("Work", "b1")
        assert p.key() == "Work[b1]"
        assert evaluate(p, env_of({"Work[b1]": True})) is True


class TestTernary:
    def test_unknown_propagates_through_not(self):
        assert evaluate(Not(Prop("X")), env_of({})) is UNKNOWN

    def test_and_short_circuit_false_beats_unknown(self):
        e = env_of({"A": False})
        assert evaluate(And(Prop("A"), Prop("X")), e) is False
        assert evaluate(And(Prop("X"), Prop("A")), e) is False

    def test_or_short_circuit_true_beats_unknown(self):
        e = env_of({"A": True})
        assert evaluate(Or(Prop("A"), Prop("X")), e) is True

    def test_and_unknown_when_undecided(self):
        e = env_of({"A": True})
        assert evaluate(And(Prop("A"), Prop("X")), e) is UNKNOWN

    def test_at_without_resolver_is_unknown(self):
        assert evaluate(At("j", Prop("A")), env_of({"A": True})) is UNKNOWN

    def test_at_with_resolver(self):
        def at(j, body):
            return evaluate(body, env_of({"A": False}))

        assert evaluate(At("j", Prop("A")), env_of({}), at=at) is False

    def test_live_with_resolver(self):
        assert evaluate(Live("o"), env_of({}), live=lambda i: True) is True

    def test_implies_guards_unknown(self):
        # live(s) -> s@X with s down: antecedent False makes the whole
        # implication True even though the consequent is UNKNOWN
        f = Implies(Live("s"), At("s", Prop("X")))
        v = evaluate(f, env_of({}), live=lambda i: False, at=lambda j, b: UNKNOWN)
        assert v is True

    def test_evaluate_bool_collapses_unknown(self):
        assert evaluate_bool(Prop("X"), env_of({})) is False

    def test_unknown_has_no_truthiness(self):
        with pytest.raises(TypeError):
            bool(UNKNOWN)


class TestPropositions:
    def test_collects_flat_keys(self):
        f = And(Prop("A"), Or(Not(Prop("B", "i")), Prop("C")))
        assert propositions(f) == frozenset({"A", "B[i]", "C"})

    def test_excludes_at_scope(self):
        f = And(Prop("A"), At("j", Prop("B")))
        assert propositions(f) == frozenset({"A"})


class TestDNF:
    def test_false(self):
        assert to_dnf(FalseF()) == DNF_FALSE

    def test_true(self):
        assert to_dnf(TRUE) == DNF_TRUE

    def test_single_prop(self):
        assert to_dnf(Prop("A")) == frozenset({frozenset({("A", True)})})

    def test_negated_prop(self):
        assert to_dnf(Not(Prop("A"))) == frozenset({frozenset({("A", False)})})

    def test_distribution(self):
        f = And(Prop("A"), Or(Prop("B"), Prop("C")))
        dnf = to_dnf(f)
        assert dnf == frozenset(
            {
                frozenset({("A", True), ("B", True)}),
                frozenset({("A", True), ("C", True)}),
            }
        )

    def test_contradiction_dropped(self):
        f = And(Prop("A"), Not(Prop("A")))
        assert to_dnf(f) == DNF_FALSE

    def test_subsumption(self):
        # A || (A && B) == A
        f = Or(Prop("A"), And(Prop("A"), Prop("B")))
        assert to_dnf(f) == frozenset({frozenset({("A", True)})})

    def test_implies_expansion(self):
        f = Implies(Prop("A"), Prop("B"))
        assert to_dnf(f) == to_dnf(Or(Not(Prop("A")), Prop("B")))

    def test_double_negation(self):
        assert to_dnf(Not(Not(Prop("A")))) == to_dnf(Prop("A"))

    def test_de_morgan(self):
        f = Not(And(Prop("A"), Prop("B")))
        assert to_dnf(f) == to_dnf(Or(Not(Prop("A")), Not(Prop("B"))))

    def test_roundtrip_formula(self):
        f = Or(And(Prop("A"), Not(Prop("B"))), Prop("C"))
        rebuilt = dnf_to_formula(to_dnf(f))
        assert to_dnf(rebuilt) == to_dnf(f)

    def test_rejects_at(self):
        with pytest.raises(TypeError):
            to_dnf(At("j", Prop("A")))


class TestOperators:
    def test_python_operator_sugar(self):
        f = Prop("A") & ~Prop("B") | Prop("C")
        assert isinstance(f, Or)
        assert isinstance(f.left, And)

    def test_str_rendering(self):
        f = And(Prop("A"), Or(Prop("B"), Not(Prop("C"))))
        assert str(f) == "A && (B || !C)"
