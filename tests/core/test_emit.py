"""Formatter tests: emit → parse round trips."""

import pytest

from repro.core import ast as A
from repro.core.emit import emit_expr, emit_formula, emit_program
from repro.core.parser import parse_expression, parse_formula, parse_program


def roundtrip_expr(text):
    e = parse_expression(text)
    out = parse_expression(emit_expr(e))
    assert out == e, f"\noriginal: {e}\nemitted:  {emit_expr(e)}\nreparsed: {out}"


def roundtrip_formula(text):
    f = parse_formula(text)
    assert parse_formula(emit_formula(f)) == f


class TestFormulaEmission:
    @pytest.mark.parametrize(
        "text",
        [
            "A", "!A", "false", "true", "A && B", "A || B && C",
            "(A || B) && C", "A -> B -> C", "(A -> B) -> C",
            "Running[me::junction]", "f@!Reply", "live(o)",
            "live(s) -> s@!Reply", "!(A && B)",
            "for b in backs && Up[b]",
        ],
    )
    def test_roundtrip(self, text):
        roundtrip_formula(text)


class TestExprEmission:
    @pytest.mark.parametrize(
        "text",
        [
            "skip", "return", "retry",
            "host H1", "host Choose {tgt, m}",
            "write(n, g)", "save(n)", "restore(n)",
            "wait[m] !Work", "wait[] Work",
            "assert[] P", "assert[g] Work[tgt]", "retract[f::c] Starting",
            "keep(a, b)", "verify !Active",
            "skip; skip; save(n)",
            "skip + save(n)",
            "skip || skip",
            "{ save(n); write(n, g) }",
            "<| assert[] P |>",
            "save(n) otherwise[5] retry",
            "save(n) otherwise retry",
            "start f(g, 3)",
            "start b1 startup(t) serve(3*t)",
            "start f b({b1::serve, b2::serve}, t)",
            "stop f",
            "complain()",
            "RunBackend(n, t, s)",
            "if A then skip else retry",
            "if A then skip",
            "for b in {x, y} ; write(n, b)",
            "for b in backs otherwise[t] skip",
            "case { A => skip; break otherwise => skip }",
            """case {
                 A => save(n); next
                 for b in backs (!Call && Init[b]) => skip; reconsider
                 otherwise => retry
               }""",
        ],
    )
    def test_roundtrip(self, text):
        roundtrip_expr(text)


class TestProgramEmission:
    def test_roundtrip_fig3(self):
        src = """
        instance_types { TF, TG }
        instances { f: TF, g: TG }
        def main(t) = start f(t) + start g(t)
        def complain() = host C; return
        def TF::junction(t) =
          | init prop !Work
          | init data n
          host H1; save(n);
          { write(n, g); assert[g] Work; wait[] !Work } otherwise[t] complain()
        def TG::junction(t) =
          | init prop !Work
          | init data n
          | guard Work
          restore(n); host H2; retract[f] Work
        """
        p = parse_program(src)
        emitted = emit_program(p)
        p2 = parse_program(emitted)
        assert p2 == p

    @pytest.mark.parametrize(
        "name",
        ["remote_snapshot", "caching", "checkpointing", "failover",
         "watched_failover"],
    )
    def test_roundtrip_architecture_files(self, name):
        from repro.arch.loader import load_source

        p = parse_program(load_source(name))
        assert parse_program(emit_program(p)) == p

    @pytest.mark.parametrize("name", ["sharding", "parallel_sharding"])
    def test_roundtrip_sharding(self, name):
        from repro.arch.loader import load_source

        p = parse_program(load_source(name, n_backends=4))
        assert parse_program(emit_program(p)) == p

    def test_emits_all_decl_kinds(self):
        src = """
        instance_types { T }
        instances { x: T }
        def main() = start x()
        def T::j() =
          | init prop Starting
          | init data n
          | set Backs = {a, b}
          | subset tgt of Backs
          | idx cur of {a, b}
          | for b in Backs init prop !Up[b]
          | guard Starting
          skip
        """
        p = parse_program(src)
        assert parse_program(emit_program(p)) == p
