"""CLI tests."""

import pytest

from repro.cli import main

GOOD = """
instance_types { T }
instances { x: T }
def main() = start x()
def T::j() =
  | init prop !P
  assert[] P
"""

BAD = """
instance_types { T }
instances { x: Nope }
def main() = start x()
"""


@pytest.fixture
def good_file(tmp_path):
    f = tmp_path / "arch.csaw"
    f.write_text(GOOD)
    return str(f)


class TestCheck:
    def test_ok(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_program(self, tmp_path, capsys):
        f = tmp_path / "bad.csaw"
        f.write_text(BAD)
        assert main(["check", str(f)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.csaw"]) == 1

    def test_config_values(self, tmp_path, capsys):
        f = tmp_path / "cfg.csaw"
        f.write_text(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def T::j() =
              | set Backs
              | for b in Backs init prop !Up[b]
              skip
            """
        )
        assert main(["check", str(f), "--config", "Backs=a,b"]) == 0


class TestFmt:
    def test_prints_normalized(self, good_file, capsys):
        assert main(["fmt", good_file]) == 0
        out = capsys.readouterr().out
        assert "instance_types { T }" in out
        from repro.core.parser import parse_program

        assert parse_program(out) == parse_program(GOOD)

    def test_write_in_place(self, good_file, capsys):
        assert main(["fmt", good_file, "--write"]) == 0
        assert main(["check", good_file]) == 0


class TestTopo:
    def test_edges_listed(self, tmp_path, capsys):
        f = tmp_path / "t.csaw"
        f.write_text(
            """
            instance_types { F, G }
            instances { f: F, g: G }
            def main() = start f() + start g()
            def F::j() = | init prop !W
              assert[g] W
            def G::j() = | init prop !W
              skip
            """
        )
        assert main(["topo", str(f)]) == 0
        out = capsys.readouterr().out
        assert "f::j -> g::j" in out


class TestSemantics:
    def test_text_output(self, good_file, capsys):
        assert main(["semantics", good_file]) == 0
        out = capsys.readouterr().out
        assert "== startup ==" in out
        assert "Sched_x::j" in out

    def test_dot_output(self, good_file, capsys):
        assert main(["semantics", good_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestLoc:
    def test_counts(self, good_file, capsys):
        assert main(["loc", good_file]) == 0
        assert int(capsys.readouterr().out.strip()) == 6
