"""Property-based tests (hypothesis) for the DSL core."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ast as A
from repro.core.expand import unroll_expr, unroll_formula
from repro.core.formula import (
    And,
    FalseF,
    Implies,
    Not,
    Or,
    Prop,
    UNKNOWN,
    dnf_to_formula,
    evaluate,
    propositions,
    to_dnf,
)
from repro.core.lexer import tokenize
from repro.core.parser import parse_formula

PROPS = ["A", "B", "C", "D"]


def formulas(depth=4):
    base = st.sampled_from([Prop(p) for p in PROPS] + [FalseF()])
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.builds(Not, inner),
            st.builds(And, inner, inner),
            st.builds(Or, inner, inner),
            st.builds(Implies, inner, inner),
        ),
        max_leaves=12,
    )


def eval_dnf(dnf, assignment):
    return any(
        all(assignment[key] is pol for key, pol in clause) for clause in dnf
    )


class TestDnfProperties:
    @given(formulas())
    @settings(max_examples=200)
    def test_dnf_preserves_truth_table(self, f):
        dnf = to_dnf(f)
        keys = sorted(propositions(f) | {k for c in dnf for k, _ in c})
        for values in itertools.product([False, True], repeat=len(keys)):
            assignment = dict(zip(keys, values))
            direct = evaluate(f, lambda k: assignment[k])
            via_dnf = eval_dnf(dnf, assignment)
            assert direct is via_dnf

    @given(formulas())
    @settings(max_examples=100)
    def test_dnf_roundtrip_fixpoint(self, f):
        dnf = to_dnf(f)
        assert to_dnf(dnf_to_formula(dnf)) == dnf

    @given(formulas())
    @settings(max_examples=100)
    def test_dnf_clauses_noncontradictory(self, f):
        for clause in to_dnf(f):
            keys = [k for k, _ in clause]
            assert len(keys) == len(set(keys))

    @given(formulas(), formulas())
    @settings(max_examples=100)
    def test_demorgan_equivalence(self, f, g):
        assert to_dnf(Not(And(f, g))) == to_dnf(Or(Not(f), Not(g)))


class TestTernaryProperties:
    @given(formulas())
    @settings(max_examples=150)
    def test_kleene_monotonicity(self, f):
        """Refining UNKNOWN to a value never flips a decided result."""
        keys = sorted(propositions(f))
        if not keys:
            return
        partial = {k: UNKNOWN for k in keys}
        partial[keys[0]] = True
        v_partial = evaluate(f, lambda k: partial[k])
        if v_partial is UNKNOWN:
            return
        for values in itertools.product([False, True], repeat=len(keys) - 1):
            full = dict(zip(keys[1:], values))
            full[keys[0]] = True
            assert evaluate(f, lambda k: full[k]) is v_partial

    @given(formulas())
    @settings(max_examples=100)
    def test_negation_involution(self, f):
        env = {p: True for p in PROPS}
        assert evaluate(Not(Not(f)), lambda k: env.get(k, False)) is evaluate(
            f, lambda k: env.get(k, False)
        )


class TestFormulaParsingProperties:
    @given(formulas())
    @settings(max_examples=150)
    def test_str_parse_roundtrip(self, f):
        """str() output re-parses to a logically equivalent formula."""
        reparsed = parse_formula(str(f))
        assert to_dnf(reparsed) == to_dnf(f)

    @given(st.text(alphabet="abcXYZ_01 ()!&|", max_size=30))
    @settings(max_examples=100)
    def test_lexer_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except Exception as e:
            from repro.core.errors import ParseError

            assert isinstance(e, ParseError)
        else:
            assert tokens[-1].kind == "eof"


class TestForUnrollProperties:
    names = st.lists(
        st.sampled_from(["p", "q", "r", "s"]), min_size=0, max_size=4, unique=True
    )

    @given(names, st.sampled_from([";", "+", "||"]))
    @settings(max_examples=100)
    def test_unroll_element_count(self, elems, op):
        body = A.Write("n", A.ref("b"))
        e = A.For("b", A.SetLit(tuple(A.ref(x) for x in elems)), op, body)
        out = unroll_expr(e, {})
        writes = [x for x in A.walk(out) if isinstance(x, A.Write)]
        if not elems:
            assert out == A.Skip()
        else:
            assert len(writes) == len(elems)
            assert [w.target for w in writes] == [A.ref(x) for x in elems]

    @given(names)
    @settings(max_examples=50)
    def test_formula_unroll_matches_manual_fold(self, elems):
        f = A.ForFormula(
            "b", A.SetLit(tuple(A.ref(x) for x in elems)), "||", Prop("Up", A.ref("b"))
        )
        out = unroll_formula(f, {})
        env = {f"Up[{x}]": (x in ("p", "q")) for x in elems}
        expected = any(env.get(f"Up[{x}]", False) for x in elems)
        got = evaluate(out, lambda k: env.get(k, False))
        assert got is expected
