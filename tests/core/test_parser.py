"""Parser tests across the whole grammar."""

import pytest

from repro.core import ast as A
from repro.core.errors import ParseError
from repro.core.formula import And, At, FalseF, Implies, Live, Not, Or, Prop
from repro.core.parser import parse_expression, parse_formula, parse_program


class TestPrograms:
    def test_minimal_program(self):
        p = parse_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def T::junction() = skip
            """
        )
        assert p.instance_types == ("T",)
        assert p.instances == (("x", "T"),)
        assert p.main is not None
        assert p.defs[0].qualified == "T::junction"

    def test_anonymous_junction_name_defaults(self):
        p = parse_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def T::(t) = skip
            """
        )
        assert p.defs[0].junction == "junction"

    def test_function_definition(self):
        p = parse_program(
            """
            instance_types { T }
            instances { x: T }
            def main() = start x()
            def helper(a, b) = skip
            def T::j() = helper(1, 2)
            """
        )
        assert p.functions[0].name == "helper"
        assert p.functions[0].params == ("a", "b")

    def test_duplicate_main_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def main() = skip def main() = skip")

    def test_multiple_instances(self):
        p = parse_program(
            """
            instance_types { F, B }
            instances { f: F, b1: B, b2: B }
            def main() = start f()
            def F::j() = skip
            """
        )
        assert p.instance_map() == {"f": "F", "b1": "B", "b2": "B"}


class TestDeclarations:
    def _decls(self, decl_text):
        p = parse_program(
            f"""
            instance_types {{ T }}
            instances {{ x: T }}
            def main() = start x()
            def T::j() =
              {decl_text}
              skip
            """
        )
        return p.defs[0].decls

    def test_init_prop_negative(self):
        (d,) = self._decls("| init prop !Work")
        assert isinstance(d, A.InitProp)
        assert d.name == "Work" and d.value is False

    def test_init_prop_positive(self):
        (d,) = self._decls("| init prop Starting")
        assert d.value is True

    def test_init_prop_indexed(self):
        (d,) = self._decls("| init prop !Running[me::junction]")
        assert d.index == A.ref("me::junction")
        assert d.key() == "Running[me::junction]"

    def test_init_data(self):
        (d,) = self._decls("| init data n")
        assert isinstance(d, A.InitData)

    def test_guard(self):
        (d,) = self._decls("| guard Work && !Done")
        assert isinstance(d, A.Guard)

    def test_set_with_literal(self):
        (d,) = self._decls("| set Backs = {a, b}")
        assert isinstance(d, A.SetDecl)
        assert d.literal == A.SetLit((A.ref("a"), A.ref("b")))

    def test_set_without_literal(self):
        (d,) = self._decls("| set Backs")
        assert d.literal is None

    def test_subset(self):
        (d,) = self._decls("| subset tgt of Backs")
        assert isinstance(d, A.SubsetDecl)

    def test_idx_of_literal_set(self):
        (d,) = self._decls("| idx tgt of {b1, b2}")
        assert isinstance(d, A.IdxDecl)
        assert isinstance(d.of_set, A.SetLit)

    def test_for_init(self):
        (d,) = self._decls("| for b in backs init prop !Ready[b]")
        assert isinstance(d, A.ForInit)
        assert d.var == "b"
        assert d.decl.index == A.ref("b")


class TestStatements:
    def test_sequence(self):
        e = parse_expression("skip; skip; skip")
        assert isinstance(e, A.Seq)
        assert len(e.items) == 3

    def test_trailing_semicolon_allowed(self):
        e = parse_expression("skip; skip;")
        assert isinstance(e, A.Seq) and len(e.items) == 2

    def test_parallel(self):
        e = parse_expression("skip + skip")
        assert isinstance(e, A.Par)

    def test_replicated_parallel(self):
        e = parse_expression("skip || skip")
        assert isinstance(e, A.RepPar)

    def test_precedence_seq_loosest(self):
        e = parse_expression("skip + skip; skip")
        assert isinstance(e, A.Seq)
        assert isinstance(e.items[0], A.Par)

    def test_host_block_with_writes(self):
        e = parse_expression("host Choose {tgt, m}")
        assert e == A.HostBlock("Choose", ("tgt", "m"))

    def test_host_block_no_writes(self):
        e = parse_expression("host H1")
        assert e.writes == ()

    def test_write(self):
        e = parse_expression("write(n, f::c)")
        assert e == A.Write("n", A.ref("f::c"))

    def test_save_plain_and_paper_style(self):
        assert parse_expression("save(n)") == A.Save("n")
        assert parse_expression("save(..., n)") == A.Save("n")

    def test_restore_paper_style(self):
        assert parse_expression("restore(n, ...)") == A.Restore("n")

    def test_wait_with_keys(self):
        e = parse_expression("wait[m, n] !Work")
        assert e.keys == ("m", "n")
        assert e.formula == Not(Prop("Work"))

    def test_wait_no_keys(self):
        e = parse_expression("wait[] Work")
        assert e.keys == ()

    def test_assert_self(self):
        e = parse_expression("assert[] Retried")
        assert isinstance(e.target, A.SelfTarget)

    def test_assert_indexed(self):
        e = parse_expression("assert[tgt] Work[tgt]")
        assert e.prop == "Work"
        assert e.index == A.ref("tgt")

    def test_retract_remote(self):
        e = parse_expression("retract[f::c] Starting")
        assert isinstance(e, A.Retract)
        assert e.target == A.ref("f::c")

    def test_keep(self):
        e = parse_expression("keep(a, b)")
        assert e == A.Keep(("a", "b"))

    def test_verify(self):
        e = parse_expression("verify !Active && Work")
        assert isinstance(e, A.Verify)

    def test_fate_block(self):
        e = parse_expression("{ skip; skip }")
        assert isinstance(e, A.FateBlock)

    def test_transaction(self):
        e = parse_expression("<| skip |>")
        assert isinstance(e, A.Transaction)

    def test_parens_are_grouping_only(self):
        e = parse_expression("(skip)")
        assert isinstance(e, A.Skip)

    def test_otherwise_with_timeout(self):
        e = parse_expression("skip otherwise[5] retry")
        assert isinstance(e, A.Otherwise)
        assert e.timeout == A.Num(5.0)

    def test_otherwise_without_timeout(self):
        e = parse_expression("skip otherwise retry")
        assert e.timeout is None

    def test_otherwise_right_associative(self):
        e = parse_expression("skip otherwise[1] skip otherwise[2] retry")
        assert isinstance(e.handler, A.Otherwise)

    def test_function_call(self):
        e = parse_expression("complain()")
        assert e == A.Call("complain", ())

    def test_function_call_args(self):
        e = parse_expression("RunBackend(n, t, s)")
        assert e.args == (A.ref("n"), A.ref("t"), A.ref("s"))

    def test_bare_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("complain")


class TestStartStop:
    def test_start_anonymous_args(self):
        e = parse_expression("start f(g, 3)")
        assert e.instance == A.ref("f")
        assert e.junction_args == ((None, (A.ref("g"), A.Num(3.0))),)

    def test_start_named_junction_groups(self):
        e = parse_expression("start b1 startup(t) serve(t) reactivate(3*t)")
        names = [j for j, _ in e.junction_args]
        assert names == ["startup", "serve", "reactivate"]
        _, args = e.junction_args[2]
        assert isinstance(args[0], A.BinArith)

    def test_start_no_args(self):
        e = parse_expression("start w")
        assert e.junction_args == ()

    def test_start_set_argument(self):
        e = parse_expression("start f b({b1::serve, b2::serve}, t)")
        _, args = e.junction_args[0]
        assert isinstance(args[0], A.SetLit)

    def test_stop(self):
        e = parse_expression("stop f")
        assert e == A.Stop(A.ref("f"))

    def test_start_parallel_composition(self):
        e = parse_expression("start a() + start b()")
        assert isinstance(e, A.Par)


class TestCase:
    def test_case_basic(self):
        e = parse_expression(
            "case { Work => skip; break otherwise => skip }"
        )
        assert isinstance(e, A.Case)
        assert len(e.arms) == 1
        assert e.arms[0].terminator == "break"

    def test_case_all_terminators(self):
        e = parse_expression(
            """case {
                A => skip; break
                B => skip; next
                C => skip; reconsider
                otherwise => skip
            }"""
        )
        assert [a.terminator for a in e.arms] == ["break", "next", "reconsider"]

    def test_case_arm_with_otherwise_inside(self):
        e = parse_expression(
            """case {
                Work => retract[Act] Work otherwise[t] complain(); reconsider
                otherwise => skip
            }"""
        )
        arm = e.arms[0]
        assert isinstance(arm.body, A.Otherwise)

    def test_case_missing_otherwise_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("case { Work => skip; break }")

    def test_case_missing_terminator_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("case { Work => skip otherwise => skip }")

    def test_for_arm(self):
        e = parse_expression(
            """case {
                for b in backs (!Call && Init[b]) => skip; break
                otherwise => skip
            }"""
        )
        assert isinstance(e.arms[0], A.ForArm)


class TestIfAndFor:
    def test_if_then(self):
        e = parse_expression("if Work then skip")
        assert isinstance(e, A.If)
        assert e.orelse is None

    def test_if_then_else(self):
        e = parse_expression("if !R then assert[] R else complain()")
        assert isinstance(e.orelse, A.Call)

    def test_for_seq(self):
        e = parse_expression("for b in {x, y} ; skip")
        assert isinstance(e, A.For)
        assert e.op == ";"

    def test_for_par(self):
        e = parse_expression("for b in backs + skip")
        assert e.op == "+"

    def test_for_otherwise_with_timeout(self):
        e = parse_expression("for b in backs otherwise[t] skip")
        assert e.op == "otherwise"
        assert e.op_timeout == A.ref("t")


class TestFormulas:
    def test_precedence(self):
        f = parse_formula("A && B || C -> D")
        # -> loosest, then ||, then &&
        assert isinstance(f, Implies)
        assert isinstance(f.left, Or)
        assert isinstance(f.left.left, And)

    def test_negation(self):
        assert parse_formula("!A") == Not(Prop("A"))

    def test_true_false(self):
        assert parse_formula("false") == FalseF()
        assert parse_formula("true") == Not(FalseF())

    def test_indexed_prop(self):
        f = parse_formula("Running[me::junction]")
        assert f == Prop("Running", A.ref("me::junction"))

    def test_at_formula(self):
        f = parse_formula("b1::serve@Active")
        assert isinstance(f, At)
        assert f.junction == A.ref("b1::serve")

    def test_at_with_negation(self):
        f = parse_formula("f@!Reply")
        assert isinstance(f, At)
        assert f.body == Not(Prop("Reply"))

    def test_liveness(self):
        assert parse_formula("live(o)") == Live(A.ref("o"))
        assert parse_formula("S(o)") == Live(A.ref("o"))

    def test_implication_right_assoc(self):
        f = parse_formula("A -> B -> C")
        assert isinstance(f.right, Implies)

    def test_for_formula(self):
        f = parse_formula("for b in backs && Ready[b]")
        assert isinstance(f, A.ForFormula)
        assert f.op == "&&"

    def test_qualified_name_without_at_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("a::b")


class TestPaperPrograms:
    """The full architecture files from the paper all parse."""

    @pytest.mark.parametrize(
        "name",
        ["remote_snapshot", "caching", "checkpointing", "failover",
         "watched_failover"],
    )
    def test_architecture_parses(self, name):
        from repro.arch.loader import load_source

        p = parse_program(load_source(name))
        assert p.main is not None
        assert p.defs

    def test_sharding_parses_with_backends(self):
        from repro.arch.loader import load_source

        p = parse_program(load_source("sharding", n_backends=4))
        assert len(p.instances) == 5
