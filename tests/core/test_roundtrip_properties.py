"""Property-based formatter/parser round trips.

``tests/core/test_emit.py`` checks curated programs; here hypothesis
builds random (valid) programs straight from the AST constructors and
requires

* ``parse_program(emit_program(p)) == p`` — the formatter is a faithful
  inverse of the parser on canonical ASTs, and
* ``validate_program`` is *stable* — it accepts/rejects a program and
  its reparsed emission identically, and repeated calls agree (the
  validator is stateless).

Generated programs use fixed name pools (props P1..P3, data d1/d2) so
every statement references declared state, and composite statements are
built in the parser's canonical shape (Seq/Par flattened n-ary, no
single-item groups).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ast as A
from repro.core.emit import emit_expr, emit_program
from repro.core.errors import ValidationError
from repro.core.formula import And, FalseF, Implies, Not, Or, Prop
from repro.core.parser import parse_expression, parse_program
from repro.core.validate import validate_program

PROPS = ("P1", "P2", "P3")
DATA = ("d1", "d2")

# targets that are not the containing junction (write/assert to self is
# a validation error): the peer instance or the junction parameter
TARGETS = (A.ref("g"), A.ref("q"))


def props():
    return st.sampled_from(PROPS).map(Prop)


def formulas():
    base = props() | st.just(FalseF())
    return st.recursive(
        base,
        lambda kids: st.one_of(
            kids.map(Not),
            st.tuples(kids, kids).map(lambda t: And(*t)),
            st.tuples(kids, kids).map(lambda t: Or(*t)),
            st.tuples(kids, kids).map(lambda t: Implies(*t)),
        ),
        max_leaves=6,
    )


def _flat(cls, items):
    """Build a canonical n-ary Seq/Par: nested same-class nodes are
    flattened, exactly as the parser produces them."""
    out = []
    for i in items:
        if isinstance(i, cls):
            out.extend(i.items)
        else:
            out.append(i)
    return cls(tuple(out))


def leaf_stmts():
    target = st.sampled_from(TARGETS)
    return st.one_of(
        st.just(A.Skip()),
        st.just(A.Retry()),
        st.sampled_from(DATA).map(A.Save),
        st.sampled_from(DATA).map(A.Restore),
        st.tuples(target, st.sampled_from(PROPS)).map(lambda t: A.Assert(*t)),
        st.tuples(target, st.sampled_from(PROPS)).map(lambda t: A.Retract(*t)),
        st.sampled_from(PROPS).map(lambda p: A.Assert(A.SelfTarget(), p)),
        st.sampled_from(PROPS).map(lambda p: A.Retract(A.SelfTarget(), p)),
        st.tuples(st.sampled_from(DATA), target).map(lambda t: A.Write(*t)),
        formulas().map(A.Verify),
        st.tuples(
            st.lists(st.sampled_from(DATA), max_size=2, unique=True),
            formulas(),
        ).map(lambda t: A.Wait(tuple(t[0]), t[1])),
        st.lists(
            st.sampled_from(PROPS + DATA), min_size=1, max_size=2, unique=True
        ).map(lambda ks: A.Keep(tuple(ks))),
    )


def case_arms(stmt):
    arm = st.tuples(
        formulas(), stmt, st.sampled_from(("break", "next", "reconsider"))
    ).map(lambda t: A.CaseArm(*t))
    last = st.tuples(
        formulas(), stmt, st.sampled_from(("break", "reconsider"))
    ).map(lambda t: A.CaseArm(*t))  # 'next' before otherwise is invalid
    return st.tuples(st.lists(arm, max_size=2), last).map(
        lambda t: tuple(t[0]) + (t[1],)
    )


def stmts():
    return st.recursive(
        leaf_stmts(),
        lambda kids: st.one_of(
            st.lists(kids, min_size=2, max_size=3).map(
                lambda xs: _flat(A.Seq, xs)
            ),
            st.lists(kids, min_size=2, max_size=3).map(
                lambda xs: _flat(A.Par, xs)
            ),
            st.tuples(formulas(), kids, st.none() | kids).map(
                lambda t: A.If(*t)
            ),
            st.tuples(
                kids,
                st.none() | st.sampled_from((1, 2.5)).map(A.Num),
                kids,
            ).map(lambda t: A.Otherwise(*t)),
            st.tuples(case_arms(kids), kids).map(lambda t: A.Case(*t)),
            # host blocks inside transactions are invalid; the leaf
            # strategy contains none, so any subtree is admissible
            kids.map(A.Transaction),
        ),
        max_leaves=8,
    )


def programs():
    decls = tuple(
        [A.InitProp(p, value=False) for p in PROPS]
        + [A.InitData(d) for d in DATA]
    )
    main = A.MainDef(
        params=("t",),
        body=_flat(
            A.Par,
            [
                A.Start(A.ref("x"), ((None, (A.ref("t"),)),)),
                A.Start(A.ref("g"), ((None, (A.ref("t"),)),)),
            ],
        ),
    )
    peer = A.JunctionDef("TG", "j", ("q",), decls, A.Skip())
    return stmts().map(
        lambda body: A.Program(
            instance_types=("T", "TG"),
            instances=(("x", "T"), ("g", "TG")),
            main=main,
            defs=(A.JunctionDef("T", "j", ("q",), decls, body), peer),
        )
    )


@given(programs())
@settings(max_examples=120, deadline=None)
def test_program_roundtrip_ast_identical(p):
    emitted = emit_program(p)
    assert parse_program(emitted) == p, emitted


@given(stmts())
@settings(max_examples=150, deadline=None)
def test_expr_roundtrip_ast_identical(e):
    emitted = emit_expr(e)
    assert parse_expression(emitted) == e, emitted


@given(programs())
@settings(max_examples=80, deadline=None)
def test_validate_is_stable(p):
    def outcome(prog):
        try:
            validate_program(prog)
            return None
        except ValidationError as err:
            return str(err)

    first = outcome(p)
    # stateless: repeated validation agrees
    assert outcome(p) == first
    # emission-invariant: the reparsed program validates identically
    assert outcome(parse_program(emit_program(p))) == first
