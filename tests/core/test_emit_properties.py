"""Property-based formatter tests: random ASTs survive emit → parse."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ast as A
from repro.core.emit import emit_expr, emit_formula, emit_program
from repro.core.formula import And, FalseF, Implies, Not, Or, Prop
from repro.core.parser import parse_expression, parse_formula, parse_program

names = st.sampled_from(["Work", "Req", "Done", "Alpha", "beta2"])
data_names = st.sampled_from(["n", "m", "state", "req"])
targets = st.one_of(
    st.just(A.SelfTarget()),
    st.sampled_from([A.ref("g"), A.ref("f::c"), A.ref("b1::serve")]),
)
indices = st.one_of(
    st.none(),
    st.sampled_from([A.ref("tgt"), A.ref("me::junction"), A.Num(3.0)]),
)

formula_ast = st.recursive(
    st.one_of(
        st.builds(Prop, names, indices),
        st.just(FalseF()),
    ),
    lambda inner: st.one_of(
        st.builds(Not, inner),
        st.builds(And, inner, inner),
        st.builds(Or, inner, inner),
        st.builds(Implies, inner, inner),
    ),
    max_leaves=8,
)

leaf_exprs = st.one_of(
    st.just(A.Skip()),
    st.just(A.Return()),
    st.just(A.Retry()),
    st.builds(A.HostBlock, st.sampled_from(["H1", "Exec"]),
              st.sampled_from([(), ("a",), ("a", "b")])),
    st.builds(A.Save, data_names),
    st.builds(A.Restore, data_names),
    st.builds(A.Write, data_names, st.sampled_from([A.ref("g"), A.ref("f::c")])),
    st.builds(A.Assert, targets, names, indices),
    st.builds(A.Retract, targets, names, indices),
    st.builds(A.Wait, st.sampled_from([(), ("m",), ("m", "n")]), formula_ast),
    st.builds(A.Verify, formula_ast),
    st.builds(A.Keep, st.sampled_from([("a",), ("a", "b")])),
    st.builds(A.Stop, st.sampled_from([A.ref("f"), A.ref("b1")])),
)


def compound(inner):
    def seq2(a, b):
        return A.Seq((a, b))

    def par2(a, b):
        return A.Par((a, b))

    return st.one_of(
        st.builds(A.FateBlock, inner),
        st.builds(A.Transaction, inner),
        st.builds(seq2, inner, inner),
        st.builds(par2, inner, inner),
        st.builds(
            A.Otherwise, inner,
            st.one_of(st.none(), st.just(A.Num(2.0)), st.just(A.ref("t"))),
            inner,
        ),
        st.builds(
            lambda f, body, other: A.Case((A.CaseArm(f, body, "break"),), other),
            formula_ast, inner, inner,
        ),
        st.builds(A.If, formula_ast, inner, st.one_of(st.none(), inner)),
        st.builds(
            lambda var, op, body: A.For(var, A.SetLit((A.ref("x"), A.ref("y"))), op, body),
            st.just("b"), st.sampled_from([";", "+", "||"]), inner,
        ),
    )


expr_ast = st.recursive(leaf_exprs, compound, max_leaves=10)


@given(formula_ast)
@settings(max_examples=200)
def test_formula_emit_parse_roundtrip(f):
    assert parse_formula(emit_formula(f)) == f


@given(expr_ast)
@settings(max_examples=300)
def test_expr_emit_parse_roundtrip(e):
    text = emit_expr(e)
    reparsed = parse_expression(text)
    # seq/par constructors flatten; normalize both sides through the
    # smart constructors for comparison
    assert _normalize(reparsed) == _normalize(e), text


def _normalize(e):
    if isinstance(e, A.Seq):
        return A.seq(*(_normalize(i) for i in e.items))
    if isinstance(e, A.Par):
        return A.par(*(_normalize(i) for i in e.items))
    if isinstance(e, A.RepPar):
        return A.RepPar(tuple(_normalize(i) for i in e.items))
    if isinstance(e, A.FateBlock):
        return A.FateBlock(_normalize(e.body))
    if isinstance(e, A.Transaction):
        return A.Transaction(_normalize(e.body))
    if isinstance(e, A.Otherwise):
        return A.Otherwise(_normalize(e.body), e.timeout, _normalize(e.handler))
    if isinstance(e, A.Case):
        return A.Case(
            tuple(A.CaseArm(a.formula, _normalize(a.body), a.terminator) for a in e.arms),
            _normalize(e.otherwise),
        )
    if isinstance(e, A.If):
        return A.If(e.cond, _normalize(e.then),
                    _normalize(e.orelse) if e.orelse is not None else None)
    if isinstance(e, A.For):
        return A.For(e.var, e.iterable, e.op, _normalize(e.body), e.op_timeout)
    return e


@given(st.lists(st.tuples(names, st.booleans()), min_size=1, max_size=4, unique_by=lambda t: t[0]))
@settings(max_examples=50)
def test_program_emit_parse_roundtrip(props):
    decls = tuple(A.InitProp(n, v) for n, v in props)
    prog = A.Program(
        instance_types=("T",),
        instances=(("x", "T"),),
        main=A.MainDef((), A.Start(A.ref("x"), ())),
        defs=(A.JunctionDef("T", "j", (), decls, A.Skip()),),
        functions=(),
    )
    assert parse_program(emit_program(prog)) == prog
