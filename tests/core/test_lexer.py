"""Tokenizer tests."""

import pytest

from repro.core.errors import ParseError
from repro.core.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "eof"]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        toks = kinds("foo init prop Work")
        assert toks == [
            ("ident", "foo"),
            ("keyword", "init"),
            ("keyword", "prop"),
            ("ident", "Work"),
        ]

    def test_numbers_integer(self):
        toks = tokenize("42")
        assert toks[0].kind == "number"
        assert toks[0].num == 42.0

    def test_numbers_float(self):
        toks = tokenize("3.25")
        assert toks[0].num == 3.25

    def test_number_not_greedy_over_dot(self):
        # "3." without trailing digit: the dot is not consumed
        with pytest.raises(ParseError):
            tokenize("3.")

    def test_comments_stripped(self):
        toks = kinds("a # a comment with symbols <| |> :: \nb")
        assert toks == [("ident", "a"), ("ident", "b")]

    def test_eof_token_present(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"


class TestPunctuation:
    def test_longest_match_transaction_brackets(self):
        assert [t.value for t in tokenize("<| |>")[:-1]] == ["<|", "|>"]

    def test_longest_match_double_pipe_vs_pipe(self):
        values = [t.value for t in tokenize("| || |>")[:-1]]
        assert values == ["|", "||", "|>"]

    def test_double_colon_vs_colon(self):
        values = [t.value for t in tokenize("a::b a:b")[:-1]]
        assert values == ["a", "::", "b", "a", ":", "b"]

    def test_arrows(self):
        values = [t.value for t in tokenize("-> =>")[:-1]]
        assert values == ["->", "=>"]

    def test_ellipsis(self):
        values = [t.value for t in tokenize("save(..., n)")[:-1]]
        assert "..." in values

    def test_arith_operators(self):
        values = [t.value for t in tokenize("3 * t + 1 - 2 / 4")[:-1]]
        assert values == ["3", "*", "t", "+", "1", "-", "2", "/", "4"]


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(ParseError) as e:
            tokenize("ok\n  $")
        assert e.value.line == 2
        assert e.value.column == 3


class TestTokenHelpers:
    def test_is_punct(self):
        t = Token("punct", ";", 1, 1)
        assert t.is_punct(";", ",")
        assert not t.is_punct(",")

    def test_is_kw(self):
        t = Token("keyword", "case", 1, 1)
        assert t.is_kw("case")
        assert not t.is_kw("wait")
