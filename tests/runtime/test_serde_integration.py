"""Typed serialization through the runtime's save/write/restore path.

The paper's serializer exists to move C data between instances; here a
registered C-type schema carries a struct through ``save`` → ``write``
→ ``restore`` across the simulated network.
"""

from repro.core.compiler import compile_program
from repro.runtime.system import System
from repro.serde import Primitive, CString, Serializer, TypeRegistry

SRC = """
instance_types { F, G }
instances { f: F, g: G }
def main(t) = start f(t) + start g(t)
def F::j(t) =
  | init prop !Work
  | init data n
  save(n); write(n, g); assert[g] Work
def G::j(t) =
  | init prop !Work
  | init data n
  | guard Work
  restore(n)
"""


def build():
    reg = TypeRegistry()
    reg.struct("record", seq=Primitive("uint32"), tag=CString(32))
    sys_ = System(compile_program(SRC), serializer=Serializer(reg))
    return sys_


class TestTypedPath:
    def test_schema_roundtrip_across_network(self):
        sys_ = build()
        received = []
        sys_.bind_state(
            "F", schema="record",
            save=lambda a, i: {"seq": 7, "tag": "hello"},
            restore=lambda a, i, o: None,
        )
        sys_.bind_state(
            "G", schema="record",
            save=lambda a, i: None,
            restore=lambda a, i, o: received.append(o),
        )
        sys_.start(t=1)
        sys_.run_until(1.0)
        assert received == [{"seq": 7, "tag": "hello"}]
        # the wire payload is tagged with the schema
        from repro.serde import SavedData

        v = sys_.read_state("g::j", "n")
        assert isinstance(v, SavedData)
        assert v.schema == "record"

    def test_schema_violation_fails_junction(self):
        sys_ = build()
        sys_.bind_state(
            "F", schema="record",
            save=lambda a, i: {"seq": "not-an-int", "tag": "x"},
            restore=lambda a, i, o: None,
        )
        sys_.bind_state("G", save=lambda a, i: None, restore=lambda a, i, o: None)
        sys_.start(t=1)
        sys_.run_until(1.0)
        assert sys_.failures, "encoding a type-violating value must fail"

    def test_mixed_schemas_per_data_name(self):
        reg = TypeRegistry()
        reg.struct("record", seq=Primitive("uint32"), tag=CString(32))
        src = SRC.replace("save(n); write(n, g); assert[g] Work",
                          "save(n); save(m); write(n, g); assert[g] Work")
        src = src.replace("def F::j(t) =\n  | init prop !Work\n  | init data n",
                          "def F::j(t) =\n  | init prop !Work\n  | init data n\n  | init data m")
        sys_ = System(compile_program(src), serializer=Serializer(reg))
        sys_.bind_state("F", data_name="n", schema="record",
                        save=lambda a, i: {"seq": 1, "tag": "t"})
        sys_.bind_state("F", data_name="m", save=lambda a, i: {"free": ["form"]})
        sys_.bind_state("G", save=lambda a, i: None, restore=lambda a, i, o: None)
        sys_.start(t=1)
        sys_.run_until(1.0)
        from repro.serde import SavedData

        n = sys_.read_state("f::j", "n")
        m = sys_.read_state("f::j", "m")
        assert isinstance(n, SavedData) and n.schema == "record"
        assert isinstance(m, SavedData) and m.schema is None
