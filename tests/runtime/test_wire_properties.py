"""Property-based tests of the runtime wire boundary under adversarial
input.

The TCP transport and the cluster worker links share one contract
(:mod:`repro.runtime.wire`): well-formed messages round-trip exactly,
and *anything* else — truncated bodies, trailing garbage, random bytes,
hostile length prefixes — is rejected with :class:`SerdeError` (the one
error type the read loops handle) before any oversized allocation can
happen.  Hypothesis hunts the corners enumerated unit tests miss.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SerdeError
from repro.runtime.channels import Message
from repro.runtime.kvtable import Update
from repro.runtime.wire import (
    LEN_PREFIX,
    MAX_FRAME_LEN,
    check_frame_length,
    decode_message,
    encode_message,
    frame,
    read_frame,
)
from repro.serde.framing import SavedData

from ..serde.test_properties import json_like

# -- strategies ---------------------------------------------------------------

node_names = st.text(max_size=12)

#: payload values a junction can actually put on the wire: substrate
#: values (json-like), or serialized state blobs (SavedData)
wire_values = st.one_of(
    json_like,
    st.builds(SavedData, st.text(max_size=8), st.binary(max_size=32)),
)

messages = st.one_of(
    # plain payload (acks, pokes, host replies)
    st.builds(
        Message,
        src=node_names,
        dst=node_names,
        kind=st.sampled_from(["update", "ack"]),
        payload=wire_values,
        msg_id=st.integers(min_value=0, max_value=2**62),
    ),
    # KV update payload (the dominant runtime traffic)
    st.builds(
        Message,
        src=node_names,
        dst=node_names,
        kind=st.just("update"),
        payload=st.builds(
            Update, key=st.text(max_size=12), value=wire_values, src=node_names
        ),
        msg_id=st.integers(min_value=0, max_value=2**62),
    ),
)


# -- round-trip ---------------------------------------------------------------


@given(messages)
@settings(max_examples=200)
def test_message_roundtrip(msg):
    assert decode_message(encode_message(msg)) == msg


# -- adversarial bodies -------------------------------------------------------


@given(messages, st.integers(min_value=0))
@settings(max_examples=200)
def test_truncated_body_rejected(msg, cut):
    body = encode_message(msg)
    cut = cut % len(body)  # every strict prefix, including empty
    with pytest.raises(SerdeError):
        decode_message(body[:cut])


@given(messages, st.binary(min_size=1, max_size=16))
@settings(max_examples=200)
def test_trailing_garbage_rejected(msg, suffix):
    # the generic codec consumes exactly one record; any suffix means a
    # corrupt frame, not two messages
    with pytest.raises(SerdeError):
        decode_message(encode_message(msg) + suffix)


@given(st.binary(max_size=64))
@settings(max_examples=300)
def test_random_bytes_never_escape_serde_error(data):
    # the whole contract: a Message out, or SerdeError — never
    # ValueError/KeyError/UnicodeDecodeError, never a hang or crash
    try:
        out = decode_message(data)
    except SerdeError:
        return
    assert isinstance(out, Message)


@given(json_like)
@settings(max_examples=200)
def test_non_message_records_rejected(value):
    # a well-encoded generic value that is not message-shaped must be
    # rejected by the shape validation, not crash field access
    from repro.serde.framing import encode_generic

    body = encode_generic(value)
    try:
        out = decode_message(body)
    except SerdeError:
        return
    # only a value that happens to be message-shaped may decode
    assert isinstance(out, Message)


# -- length prefix ------------------------------------------------------------


def test_frame_length_bounds():
    assert check_frame_length(0) == 0
    assert check_frame_length(MAX_FRAME_LEN) == MAX_FRAME_LEN
    for bad in (-1, MAX_FRAME_LEN + 1, 0xFFFFFFFF):
        with pytest.raises(SerdeError):
            check_frame_length(bad)


def test_frame_refuses_oversized_body():
    with pytest.raises(SerdeError):
        frame(b"\x00" * (MAX_FRAME_LEN + 1))


@given(st.integers(min_value=MAX_FRAME_LEN + 1, max_value=0xFFFFFFFF),
       st.binary(max_size=32))
@settings(max_examples=50)
def test_hostile_prefix_rejected_before_allocation(length, junk):
    # a corrupt 4-byte prefix must raise before readexactly() is asked
    # for gigabytes
    async def attempt():
        reader = asyncio.StreamReader()
        reader.feed_data(LEN_PREFIX.pack(length) + junk)
        reader.feed_eof()
        await read_frame(reader)

    with pytest.raises(SerdeError):
        asyncio.run(attempt())


@given(messages)
@settings(max_examples=100)
def test_framed_stream_roundtrip(msg):
    # frame() on the wire, read_frame() off it: the transport pairing
    async def pump():
        reader = asyncio.StreamReader()
        reader.feed_data(frame(encode_message(msg)))
        reader.feed_eof()
        return await read_frame(reader)

    assert decode_message(asyncio.run(pump())) == msg
