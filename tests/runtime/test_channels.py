"""Network channel tests: latency, partitions, crashes, link config."""

import random

from repro.runtime.channels import LinkConfig, Message, Network
from repro.runtime.sim import Simulator


def setup():
    sim = Simulator()
    net = Network(sim, default_latency=0.1, intra_latency=0.001)
    inbox = []
    net.register("a::j", inbox.append)
    net.register("b::j", inbox.append)
    return sim, net, inbox


def msg(src="a::j", dst="b::j", kind="update", payload="x"):
    return Message(src=src, dst=dst, kind=kind, payload=payload, msg_id=1)


class TestDelivery:
    def test_latency_applied(self):
        sim, net, inbox = setup()
        net.send(msg())
        sim.run_until(0.05)
        assert inbox == []
        sim.run_until(0.11)
        assert len(inbox) == 1

    def test_intra_instance_latency(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.1, intra_latency=0.001)
        inbox = []
        net.register("a::x", inbox.append)
        net.register("a::y", inbox.append)
        net.send(msg(src="a::x", dst="a::y"))
        sim.run_until(0.002)
        assert len(inbox) == 1

    def test_unregistered_destination_dropped(self):
        sim, net, inbox = setup()
        net.send(msg(dst="zzz::j"))
        sim.run()
        assert net.stats["dropped"] == 1

    def test_stats(self):
        sim, net, inbox = setup()
        net.send(msg())
        sim.run()
        assert net.stats["sent"] == 1
        assert net.stats["delivered"] == 1
        assert net.stats["dropped"] == 0

    def test_per_kind_stats(self):
        sim, net, inbox = setup()
        net.send(msg(kind="update"))
        net.send(msg(src="b::j", dst="a::j", kind="ack"))
        net.send(msg(dst="zzz::j", kind="ack"))
        sim.run()
        assert net.stats["update_sent"] == 1
        assert net.stats["update_delivered"] == 1
        assert net.stats["ack_sent"] == 2
        assert net.stats["ack_delivered"] == 1
        assert net.stats["ack_dropped"] == 1

    def test_per_link_latency_override(self):
        sim, net, inbox = setup()
        net.configure_link("a", "b", LinkConfig(latency=0.5))
        net.send(msg())
        sim.run_until(0.2)
        assert inbox == []
        sim.run_until(0.6)
        assert len(inbox) == 1


class TestFaults:
    def test_down_instance_drops_at_send(self):
        sim, net, inbox = setup()
        net.set_down("b")
        net.send(msg())
        sim.run()
        assert inbox == []

    def test_down_source_drops(self):
        sim, net, inbox = setup()
        net.set_down("a")
        net.send(msg())
        sim.run()
        assert inbox == []

    def test_crash_during_flight_loses_message(self):
        sim, net, inbox = setup()
        net.send(msg())
        sim.call_at(0.05, lambda: net.set_down("b"))
        sim.run()
        assert inbox == []
        assert net.stats["dropped"] == 1

    def test_source_crash_during_flight_loses_message(self):
        # delivery-time re-check is symmetric: a message from an
        # instance that crashed mid-flight is lost too
        sim, net, inbox = setup()
        net.send(msg())
        sim.call_at(0.05, lambda: net.set_down("a"))
        sim.run()
        assert inbox == []
        assert net.stats["dropped"] == 1

    def test_recovery(self):
        sim, net, inbox = setup()
        net.set_down("b")
        net.set_down("b", False)
        net.send(msg())
        sim.run()
        assert len(inbox) == 1

    def test_partition_blocks_both_directions(self):
        sim, net, inbox = setup()
        net.partition({"a"}, {"b"})
        net.send(msg())
        net.send(msg(src="b::j", dst="a::j"))
        sim.run()
        assert inbox == []

    def test_heal_partition(self):
        sim, net, inbox = setup()
        net.partition({"a"}, {"b"})
        net.heal_partition()
        net.send(msg())
        sim.run()
        assert len(inbox) == 1

    def test_partition_during_flight(self):
        sim, net, inbox = setup()
        net.send(msg())
        sim.call_at(0.05, lambda: net.partition({"a"}, {"b"}))
        sim.run()
        assert inbox == []

    def test_probabilistic_drop(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.01, drop_probability=1.0, rng=random.Random(0))
        got = []
        net.register("b::j", got.append)
        net.send(msg())
        sim.run()
        assert got == []
        assert net.stats["dropped"] == 1

    def test_unregister(self):
        sim, net, inbox = setup()
        net.unregister("b::j")
        net.send(msg())
        sim.run()
        assert inbox == []


class TestChaosKnobs:
    def test_duplicate_probability_delivers_twice(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.01, duplicate_probability=1.0, rng=random.Random(0))
        got = []
        net.register("b::j", got.append)
        net.send(msg())
        sim.run()
        assert len(got) == 2
        assert net.stats["duplicated"] == 1
        assert net.stats["update_delivered"] == 2

    def test_link_loss_beats_duplication(self):
        sim = Simulator()
        net = Network(
            sim, default_latency=0.01, drop_probability=1.0,
            duplicate_probability=1.0, rng=random.Random(0),
        )
        got = []
        net.register("b::j", got.append)
        net.send(msg())
        sim.run()
        assert got == []
        assert net.stats["dropped"] == 2  # both copies drawn, both lost

    def test_reorder_jitter_can_invert_order(self):
        # two back-to-back sends on the same link; with jitter a later
        # message can overtake an earlier one (seed chosen to do so)
        for seed in range(50):
            sim = Simulator()
            net = Network(sim, default_latency=0.01, reorder_jitter=0.05, rng=random.Random(seed))
            got = []
            net.register("b::j", lambda m: got.append(m.payload))
            net.send(msg(payload="first"))
            net.send(msg(payload="second"))
            sim.run()
            if got == ["second", "first"]:
                return
        raise AssertionError("no seed in range produced a reordering")

    def test_no_jitter_preserves_order(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.01, rng=random.Random(0))
        got = []
        net.register("b::j", lambda m: got.append(m.payload))
        net.send(msg(payload="first"))
        net.send(msg(payload="second"))
        sim.run()
        assert got == ["first", "second"]

    def test_set_link_loss_overrides_and_clears(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.01, rng=random.Random(0))
        got = []
        net.register("b::j", got.append)
        net.set_link_loss("a", "b", 1.0)
        net.send(msg())
        net.set_link_loss("a", "b", None)
        net.send(msg())
        sim.run()
        assert len(got) == 1
        assert net.stats["dropped"] == 1

    def test_link_latency_reports_overrides(self):
        sim = Simulator()
        net = Network(sim, default_latency=0.1, intra_latency=0.001)
        assert net.link_latency("a", "b") == 0.1
        assert net.link_latency("a", "a") == 0.001
        net.configure_link("a", "b", LinkConfig(latency=0.5))
        assert net.link_latency("a", "b") == 0.5
