"""KV-table semantics: pending queues, local priority, windows, keep."""

import pytest

from repro.runtime.kvtable import KVTable, UNDEF, Update


def table():
    t = KVTable("test::j")
    t.declare("Work", False)
    t.declare("Done", False)
    t.declare("n", UNDEF)
    return t


def up(key, value, src="peer::j"):
    return Update(key=key, value=value, src=src)


class TestBasics:
    def test_declare_and_get(self):
        t = table()
        assert t.get("Work") is False
        assert t.get("n") is UNDEF

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            table().get("zzz")

    def test_get_prop_type_checked(self):
        t = table()
        with pytest.raises(TypeError):
            t.get_prop("n")

    def test_set_local_unknown_key_raises(self):
        with pytest.raises(KeyError):
            table().set_local("zzz", 1)

    def test_snapshot_is_copy(self):
        t = table()
        snap = t.snapshot()
        t.set_local("Work", True)
        assert snap["Work"] is False


class TestPendingQueue:
    def test_idle_update_queued_not_applied(self):
        t = table()
        t.receive(up("Work", True))
        assert t.get("Work") is False
        assert len(t.pending) == 1

    def test_apply_pending_in_arrival_order(self):
        t = table()
        t.receive(up("Work", True))
        t.receive(up("Work", False))
        t.receive(up("Done", True))
        n = t.apply_pending()
        assert n == 3
        assert t.get("Work") is False  # last write wins
        assert t.get("Done") is True
        assert t.pending == ()

    def test_effective_overlays_pending(self):
        t = table()
        t.receive(up("Work", True))
        assert t.effective("Work") is True
        assert t.get("Work") is False

    def test_on_idle_update_hook(self):
        t = table()
        poked = []
        t.on_idle_update = lambda: poked.append(1)
        t.receive(up("Work", True))
        assert poked == [1]

    def test_no_idle_hook_while_executing(self):
        t = table()
        poked = []
        t.on_idle_update = lambda: poked.append(1)
        t.executing = True
        t.receive(up("Work", True))
        assert poked == []


class TestLocalPriority:
    def test_local_write_discards_pending_same_key(self):
        t = table()
        t.executing = True
        t.receive(up("Work", True))
        t.set_local("Work", False)
        assert t.pending == ()
        t.apply_pending()
        assert t.get("Work") is False

    def test_local_write_keeps_other_pending(self):
        t = table()
        t.executing = True
        t.receive(up("Done", True))
        t.set_local("Work", True)
        assert len(t.pending) == 1

    def test_update_after_local_write_survives(self):
        t = table()
        t.executing = True
        t.set_local("Work", True)
        t.receive(up("Work", False))
        assert len(t.pending) == 1

    def test_local_write_hook(self):
        t = table()
        seen = []
        t.on_local_write = lambda k, old: seen.append((k, old))
        t.set_local("Work", True)
        assert seen == [("Work", False)]


class TestWindows:
    def test_admitted_update_applied_immediately(self):
        t = table()
        t.executing = True
        hits = []
        t.open_window(frozenset({"Work"}), hits.append)
        t.receive(up("Work", True))
        assert t.get("Work") is True
        assert hits == ["Work"]
        assert t.pending == ()

    def test_unadmitted_update_queued(self):
        t = table()
        t.executing = True
        t.open_window(frozenset({"Work"}), lambda k: None)
        t.receive(up("Done", True))
        assert t.get("Done") is False
        assert len(t.pending) == 1

    def test_closed_window_stops_admitting(self):
        t = table()
        t.executing = True
        w = t.open_window(frozenset({"Work"}), lambda k: None)
        t.close_window(w)
        t.receive(up("Work", True))
        assert t.get("Work") is False

    def test_multiple_windows(self):
        t = table()
        t.executing = True
        hits = []
        t.open_window(frozenset({"Work"}), lambda k: hits.append(("w1", k)))
        t.open_window(frozenset({"Work", "Done"}), lambda k: hits.append(("w2", k)))
        t.receive(up("Work", True))
        assert ("w1", "Work") in hits and ("w2", "Work") in hits

    def test_data_key_window(self):
        t = table()
        t.executing = True
        t.open_window(frozenset({"n"}), lambda k: None)
        t.receive(up("n", b"payload"))
        assert t.get("n") == b"payload"


class TestApplyPendingFor:
    def test_applies_only_listed_keys(self):
        t = table()
        t.receive(up("Work", True))
        t.receive(up("Done", True))
        n = t.apply_pending_for({"Work"})
        assert n == 1
        assert t.get("Work") is True
        assert t.get("Done") is False
        assert [u.key for u in t.pending] == ["Done"]

    def test_arrival_order_preserved(self):
        t = table()
        t.receive(up("Work", True))
        t.receive(up("Work", False))
        t.apply_pending_for({"Work"})
        assert t.get("Work") is False

    def test_noop_on_empty(self):
        t = table()
        assert t.apply_pending_for({"Work"}) == 0


class TestKeep:
    def test_keep_discards_pending(self):
        t = table()
        t.receive(up("Work", True))
        t.receive(up("Done", True))
        t.keep(["Work"])
        assert [u.key for u in t.pending] == ["Done"]

    def test_keep_idempotent(self):
        t = table()
        t.receive(up("Work", True))
        t.keep(["Work"])
        t.keep(["Work"])
        assert t.pending == ()


class TestTransactions:
    def test_rollback_restores(self):
        t = table()
        t.tx_begin()
        t.set_local("Work", True)
        t.tx_rollback()
        assert t.get("Work") is False

    def test_commit_keeps(self):
        t = table()
        t.tx_begin()
        t.set_local("Work", True)
        t.tx_commit()
        assert t.get("Work") is True

    def test_nested(self):
        t = table()
        t.tx_begin()
        t.set_local("Work", True)
        t.tx_begin()
        t.set_local("Done", True)
        t.tx_rollback()
        assert t.get("Done") is False
        assert t.get("Work") is True
        t.tx_commit()
        assert t.get("Work") is True

    def test_in_transaction_flag(self):
        t = table()
        assert not t.in_transaction
        t.tx_begin()
        assert t.in_transaction
        t.tx_commit()
        assert not t.in_transaction


class TestPendingGauge:
    """The ``kv_pending_updates`` gauge must track every path that
    changes the backlog — including ``keep``, which used to drop
    buckets without re-syncing it (regression test)."""

    def instrumented(self):
        from repro.telemetry.facade import Telemetry

        class _Clock:
            now = 0.0

        tel = Telemetry(_Clock())
        t = table()
        t.attach_telemetry(tel)
        return t, tel.gauge("kv_pending_updates", node=t.owner)

    def test_keep_resyncs_gauge(self):
        t, gauge = self.instrumented()
        t.receive(up("Work", True))
        t.receive(up("Work", False))
        t.receive(up("Done", True))
        assert gauge.value == 3
        t.keep(["Work"])
        assert gauge.value == 1
        t.keep(["Work", "Done"])  # idempotent on Work, drops Done
        assert gauge.value == 0
        assert t.pending_count == 0

    def test_gauge_follows_enqueue_apply_and_discard(self):
        t, gauge = self.instrumented()
        t.receive(up("Work", True))
        t.receive(up("Done", True))
        assert gauge.value == 2
        t.apply_pending()
        assert gauge.value == 0
        t.executing = True
        t.receive(up("Work", True))
        assert gauge.value == 1
        t.set_local("Work", False)  # local priority discards the bucket
        assert gauge.value == 0


class TestRollbackStorageIdentity:
    """Rollback restores *values in place*: the flat slot list and the
    dict-like view keep their identity, so compiled bodies that closed
    over ``table.slots`` stay valid across an aborted transaction."""

    def test_storage_identity_survives_rollback(self):
        t = table()
        slots = t.slots
        values = t.values
        t.tx_begin()
        t.set_local("Work", True)
        t.values["Extra"] = 7  # declares a new slot inside the frame
        assert t.has("Extra")
        t.tx_rollback()
        assert t.slots is slots
        assert t.values is values
        assert t.get("Work") is False
        # the slot declared inside the frame is truly un-declared
        assert not t.has("Extra")
        # the alias still reads live storage after rollback
        t.set_local("Work", True)
        assert slots[t.layout.slot_of("Work")] is True

    def test_rollback_of_mid_frame_declaration(self):
        t = table()
        t.tx_begin()
        t.values["A9"] = 1
        t.values["B9"] = 2  # two new slots; undone in reverse order
        t.set_local("Work", True)
        t.tx_rollback()
        assert not t.has("A9") and not t.has("B9")
        assert t.get("Work") is False
        assert len(t.slots) == len(t.layout.keys) == len(t.layout.index)
