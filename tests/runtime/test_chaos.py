"""Chaos engine tests: FaultPlan timelines, seeded schedules, soak
invariant checking."""

import pytest

from repro.runtime.channels import Message
from repro.runtime.chaos import ChaosConfig, ChaosEngine, SoakHarness
from repro.runtime.faults import FaultPlan

from .helpers import make_system


def _sys(**kw):
    return make_system(
        """
        instance_types { T }
        instances { x: T, y: T }
        def main() = start x() + start y()
        def T::j() = skip
        """,
        latency=0.05,
        **kw,
    )


def _probe_wire(sys_):
    """Register raw probe endpoints on the system's network."""
    got = []
    sys_.network.register("a::p", lambda m: got.append((sys_.sim.now, m.payload)))
    return got


def _send_at(sys_, t, payload, src="b::p", dst="a::p"):
    sys_.sim.call_at(
        t,
        lambda: sys_.network.send(
            Message(src=src, dst=dst, kind="update", payload=payload, msg_id=0)
        ),
    )


class TestFaultPlanTimelines:
    def test_set_loss_between_window(self):
        sys_ = _sys()
        got = _probe_wire(sys_)
        FaultPlan(sys_).set_loss_between(0.1, 0.2, "b", "a", 1.0)
        _send_at(sys_, 0.15, "in-window")
        _send_at(sys_, 0.25, "after-window")
        sys_.run_until(1.0)
        assert [p for (_, p) in got] == ["after-window"]

    def test_flap_link_alternates(self):
        sys_ = _sys()
        got = _probe_wire(sys_)
        # down [0.1, 0.15), up [0.15, 0.2), down [0.2, 0.25) ...
        FaultPlan(sys_).flap_link(0.1, 0.5, "b", "a", period=0.1, duty=0.5)
        _send_at(sys_, 0.12, "down-phase")
        _send_at(sys_, 0.17, "up-phase")
        _send_at(sys_, 0.22, "down-again")
        _send_at(sys_, 0.60, "after-flapping")
        sys_.run_until(1.0)
        assert [p for (_, p) in got] == ["up-phase", "after-flapping"]

    def test_flap_link_bidirectional(self):
        sys_ = _sys()
        got = []
        sys_.network.register("b::p", lambda m: got.append(m.payload))
        FaultPlan(sys_).flap_link(0.1, 0.3, "b", "a", period=0.2, duty=0.5)
        _send_at(sys_, 0.12, "reverse-down", src="a::p", dst="b::p")
        sys_.run_until(1.0)
        assert got == []

    def test_loss_burst_restores_prior_probability(self):
        sys_ = _sys()
        sys_.network.drop_probability = 0.05
        FaultPlan(sys_).loss_burst(0.1, 0.2, 0.9)
        sys_.run_until(0.15)
        assert sys_.network.drop_probability == 0.9
        sys_.run_until(0.3)
        assert sys_.network.drop_probability == 0.05

    def test_knob_setters_log(self):
        sys_ = _sys()
        plan = FaultPlan(sys_)
        plan.set_duplication(0.2)
        plan.set_reorder(0.01)
        plan.set_global_loss(0.1)
        assert sys_.network.duplicate_probability == 0.2
        assert sys_.network.reorder_jitter == 0.01
        assert sys_.network.drop_probability == 0.1
        assert [k for (_, k, _) in plan.injected] == [
            "set_duplication", "set_reorder", "set_global_loss",
        ]

    def test_flap_requires_positive_period(self):
        with pytest.raises(ValueError):
            FaultPlan(_sys()).flap_link(0.0, 1.0, "a", "b", period=0.0)


class TestChaosEngine:
    def _engine(self, seed, sys_=None):
        cfg = ChaosConfig(horizon=10.0, crash_storms=2, loss_bursts=2, link_flaps=1)
        return ChaosEngine(sys_ or _sys(), seed=seed, config=cfg)

    def test_same_seed_same_schedule(self):
        e1 = self._engine(5).schedule(instances=["x"], links=[("x", "y")])
        e2 = self._engine(5).schedule(instances=["x"], links=[("x", "y")])
        assert e1 == e2 and e1  # identical and non-empty

    def test_different_seed_different_schedule(self):
        e1 = self._engine(5).schedule(instances=["x"])
        e2 = self._engine(6).schedule(instances=["x"])
        assert e1 != e2

    def test_crash_windows_alternate_per_instance(self):
        eng = self._engine(7)
        eng.schedule(instances=["x", "y"])
        for inst in ("x", "y"):
            kinds = [k for (_, k, d) in sorted(eng.events) if d == inst]
            assert kinds == ["crash", "restart", "crash", "restart"]

    def test_schedule_plays_out_and_instances_recover(self):
        sys_ = _sys()
        sys_.start()
        eng = self._engine(3, sys_)
        eng.schedule(instances=["x", "y"], links=[("x", "y")])
        sys_.run_until(eng.config.horizon + 1.0)
        assert sys_.instance("x").alive
        assert sys_.instance("y").alive
        # crashes really happened (trace has crash/restart records)
        kinds = [e.kind for e in sys_.telemetry.events]
        assert kinds.count("crash_instance") == 4
        assert kinds.count("restart_instance") == 4

    def test_duplication_and_reorder_windows(self):
        sys_ = _sys()
        sys_.start()
        cfg = ChaosConfig(horizon=5.0, crash_storms=0, loss_bursts=0,
                          duplication=0.3, reorder_jitter=0.02)
        eng = ChaosEngine(sys_, seed=1, config=cfg)
        eng.schedule()
        sys_.run_until(1.0)
        assert sys_.network.duplicate_probability == 0.3
        assert sys_.network.reorder_jitter == 0.02
        sys_.run_until(6.0)
        assert sys_.network.duplicate_probability == 0.0
        assert sys_.network.reorder_jitter == 0.0

    def test_unknown_instance_rejected_at_schedule_time(self):
        # a typo'd target should fail when the schedule is built, not
        # explode mid-simulation when the crash fires
        with pytest.raises(Exception, match="nope"):
            self._engine(1).schedule(instances=["nope"])

    def test_raced_restart_is_skipped_not_fatal(self):
        sys_ = _sys()
        sys_.start()
        eng = self._engine(3, sys_)
        eng.schedule(instances=["x"])
        # the architecture "revives" x right after each chaos crash:
        # chaos's own restart then races and must be skipped gracefully
        for (t, kind, detail) in eng.events:
            if kind == "crash" and detail == "x":
                sys_.sim.call_at(t + 1e-6, lambda: sys_.restart_instance("x"))
        sys_.run_until(eng.config.horizon + 1.0)
        assert sys_.instance("x").alive
        assert [k for (_, k, _) in eng.skipped] == ["restart", "restart"]


class TestSoakHarness:
    def test_violations_recorded_with_time(self):
        sys_ = _sys()
        sys_.start()
        soak = SoakHarness(sys_, check_interval=0.25)
        soak.invariant("early", lambda s: s.sim.now < 1.0)
        soak.run(until=2.0)
        assert soak.violations
        assert all(v.time >= 1.0 for v in soak.violations)
        assert all(v.name == "early" for v in soak.violations)

    def test_decorator_form_and_raising_invariant(self):
        sys_ = _sys()
        sys_.start()
        soak = SoakHarness(sys_, check_interval=0.5)

        @soak.invariant("boom")
        def _inv(s):
            raise RuntimeError("inspect failed")

        soak.run(until=1.0)
        assert soak.violations
        assert "inspect failed" in soak.violations[0].detail

    def test_clean_run_has_no_violations(self):
        sys_ = _sys()
        sys_.start()
        soak = SoakHarness(sys_)
        soak.invariant("no_failures", lambda s: not s.failures)
        assert soak.run(until=2.0) == []
