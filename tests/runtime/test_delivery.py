"""Reliable-delivery layer tests: retransmission, backoff, dedup,
circuit breaking, and the DeliveryFailure/otherwise interaction."""

import random

import pytest

from repro.core.errors import DeliveryFailure
from repro.runtime.channels import Message, Network
from repro.runtime.delivery import DeliveryPolicy, ReliableDelivery
from repro.runtime.kvtable import Update
from repro.runtime.sim import Simulator
from repro.telemetry import Telemetry

from .helpers import failures_of, pair


# ---------------------------------------------------------------------------
# Unit level: ReliableDelivery over a bare Network
# ---------------------------------------------------------------------------


class _Host:
    """Minimal stand-in for System: just sim + network + telemetry."""

    def __init__(self, *, drop=0.0, seed=0, latency=0.05):
        self.sim = self.clock = Simulator()
        self.telemetry = Telemetry(self.sim)
        self.network = Network(
            self.sim,
            default_latency=latency,
            drop_probability=drop,
            rng=random.Random(seed),
            metrics=self.telemetry.metrics,
        )
        self.network.telemetry = self.telemetry


def _wire_ack(host, delivery, dst="b::j", src="a::j"):
    """Register endpoints so updates to ``dst`` are acked back to ``src``."""
    net = host.network

    def recv(m):
        net.send(Message(src=m.dst, dst=m.src, kind="ack", payload=m.msg_id, msg_id=m.msg_id))

    net.register(dst, recv)
    net.register(src, lambda m: delivery.ack(m.payload))


def _update(net, src="a::j", dst="b::j"):
    mid = net.next_msg_id()
    return Message(src=src, dst=dst, kind="update", payload=Update("K", True, src), msg_id=mid)


class TestRetransmission:
    def test_ack_stops_retransmission(self):
        host = _Host()
        rd = ReliableDelivery(host)
        _wire_ack(host, rd)
        rd.send(_update(host.network))
        host.sim.run()
        assert host.network.stats["retransmits"] == 0
        assert rd.outstanding == {}
        assert rd.link_health("a", "b").state == "closed"

    def test_lost_first_copy_is_retransmitted(self):
        host = _Host()
        rd = ReliableDelivery(host)
        _wire_ack(host, rd)
        host.network.set_link_loss("a", "b", 1.0)
        host.sim.call_at(0.05, lambda: host.network.set_link_loss("a", "b", None))
        rd.send(_update(host.network))
        host.sim.run()
        assert host.network.stats["retransmits"] >= 1
        assert host.network.stats["update_delivered"] == 1
        assert rd.outstanding == {}

    def test_backoff_grows_and_attempts_are_bounded(self):
        host = _Host()
        policy = DeliveryPolicy(max_attempts=4, jitter=0.0, min_timeout=0.1, backoff=2.0)
        rd = ReliableDelivery(host, policy)
        failures = []
        rd.send(_update(host.network), on_fail=failures.append)  # nothing registered: blackhole
        host.sim.run()
        times = [e.time for e in host.telemetry.events if e.kind == "retransmit"]
        # retransmits at 0.4+... no wait: timeout0 = max(4*0.1s rtt... latency 0.05 -> rtt 0.1
        # timeout0 = max(4*0.1, 0.1) = 0.4; then 0.8, 1.6
        assert times == pytest.approx([0.4, 1.2, 2.8])
        assert len(failures) == 1
        assert isinstance(failures[0], DeliveryFailure)
        assert host.network.stats["update_sent"] == 4  # bounded attempts
        assert host.network.stats["delivery_failures"] == 1

    def test_jitter_is_seeded_and_deterministic(self):
        def fail_time(seed):
            host = _Host()
            rd = ReliableDelivery(host, DeliveryPolicy(max_attempts=3), seed=seed)
            out = []
            rd.send(_update(host.network), on_fail=lambda e: out.append(host.sim.now))
            host.sim.run()
            return out[0]

        assert fail_time(1) == fail_time(1)
        assert fail_time(1) != fail_time(2)

    def test_cancel_stops_timers_without_counting_failure(self):
        host = _Host()
        rd = ReliableDelivery(host)
        msg = _update(host.network)
        rd.send(msg, on_fail=lambda e: pytest.fail("cancelled send must not fail"))
        rd.cancel(msg.msg_id)
        host.sim.run()
        assert rd.outstanding == {}
        assert host.network.stats["delivery_failures"] == 0
        assert rd.link_health("a", "b").consecutive_failures == 0

    def test_disabled_policy_is_fire_and_forget(self):
        host = _Host()
        rd = ReliableDelivery(host, DeliveryPolicy(max_attempts=0))
        rd.send(_update(host.network), on_fail=lambda e: pytest.fail("no tracking"))
        host.sim.run()
        assert rd.outstanding == {}
        assert host.network.stats["retransmits"] == 0


class TestCircuitBreaker:
    def _policy(self):
        return DeliveryPolicy(
            max_attempts=2, min_timeout=0.1, jitter=0.0,
            breaker_threshold=2, breaker_cooldown=5.0,
        )

    def _fail_one(self, host, rd):
        errs = []
        rd.send(_update(host.network), on_fail=errs.append)
        host.sim.run()
        assert errs
        return errs[0]

    def test_opens_after_consecutive_failures_and_fast_fails(self):
        host = _Host()
        rd = ReliableDelivery(host, self._policy())
        self._fail_one(host, rd)  # blackhole: nothing registered
        assert rd.link_health("a", "b").state == "closed"
        self._fail_one(host, rd)
        assert rd.link_health("a", "b").state == "open"
        with pytest.raises(DeliveryFailure):
            rd.send(_update(host.network))
        assert host.network.stats["fast_fails"] == 1

    def test_probe_recovery_closes_breaker(self):
        host = _Host()
        rd = ReliableDelivery(host, self._policy())
        self._fail_one(host, rd)
        self._fail_one(host, rd)
        assert rd.link_health("a", "b").state == "open"
        # peer comes back; after the cooldown one probe goes through
        _wire_ack(host, rd)
        host.sim.run_until(host.sim.now + 5.0)
        rd.send(_update(host.network))
        assert rd.link_health("a", "b").state == "half-open"
        host.sim.run()
        assert rd.link_health("a", "b").state == "closed"
        rd.send(_update(host.network))  # flows normally again
        host.sim.run()
        assert host.network.stats["fast_fails"] == 0

    def test_half_open_admits_single_probe(self):
        host = _Host()
        rd = ReliableDelivery(host, self._policy())
        self._fail_one(host, rd)
        self._fail_one(host, rd)
        host.sim.run_until(host.sim.now + 5.0)
        rd.send(_update(host.network))  # the probe
        with pytest.raises(DeliveryFailure):
            rd.send(_update(host.network))  # second send while probing

    def test_failed_probe_reopens(self):
        host = _Host()
        rd = ReliableDelivery(host, self._policy())
        self._fail_one(host, rd)
        self._fail_one(host, rd)
        host.sim.run_until(host.sim.now + 5.0)
        self._fail_one(host, rd)  # probe also exhausts
        assert rd.link_health("a", "b").state == "open"

    def test_breakers_are_per_link(self):
        host = _Host()
        rd = ReliableDelivery(host, self._policy())
        _wire_ack(host, rd, dst="c::j")
        self._fail_one(host, rd)
        self._fail_one(host, rd)
        assert rd.link_health("a", "b").state == "open"
        rd.send(_update(host.network, dst="c::j"))  # a->c unaffected
        host.sim.run()
        assert rd.link_health("a", "c").state == "closed"


# ---------------------------------------------------------------------------
# DSL level: remote updates through System/interpreter
# ---------------------------------------------------------------------------


class TestReliableRemoteUpdates:
    def test_lost_update_recovers_without_otherwise(self):
        """A dropped update is retransmitted until acked — the sender
        needs no ``otherwise`` wrapper to survive loss."""
        sys_ = pair(
            "assert[g] Done",
            "skip",
            g_decls="| init prop !Done",
        )
        # lose every f->g message until just before the first retransmit
        sys_.network.set_link_loss("f", "g", 1.0)
        sys_.sim.call_at(0.03, lambda: sys_.network.set_link_loss("f", "g", None))
        sys_.start(t=1)
        sys_.run_until(5.0)
        assert failures_of(sys_) == []
        assert sys_.read_state("g::j", "Done") is True
        assert sys_.network.stats["retransmits"] >= 1

    def test_lost_ack_recovers_and_dedup_applies_once(self):
        """A dropped *ack* makes the sender retransmit; the receiver
        dedups the copy (applies it once) but re-acknowledges it."""
        runs = []
        sys_ = pair(
            "wait[] Go; assert[g] Work",
            "retract[] Work; host Count",
            f_decls="| init prop !Go",
            g_decls="| init prop !Work",
            g_guard="Work",
        )
        sys_.bind_host("G", "Count", lambda ctx: runs.append(ctx.now))
        sys_.start(t=1)
        # lose the ack direction for a while; the update direction is fine
        sys_.network.set_link_loss("g", "f", 1.0)
        sys_.sim.call_at(0.05, lambda: sys_.network.set_link_loss("g", "f", None))
        sys_.external_update("f::j", "Go", True)
        sys_.run_until(5.0)
        assert failures_of(sys_) == []
        assert len(runs) == 1  # the retransmitted update was applied exactly once
        assert sys_.network.stats["dedup_suppressed"] >= 1
        assert sys_.network.stats["ack_dropped"] >= 1
        assert sys_.delivery.outstanding == {}

    def test_exhausted_delivery_fails_the_strand(self):
        sys_ = pair(
            "wait[] Go; assert[g] Work",
            "skip",
            f_decls="| init prop !Go",
            g_decls="| init prop !Work",
        )
        sys_.start(t=1)
        sys_.crash_instance("g")
        sys_.external_update("f::j", "Go", True)
        sys_.run_until(30.0)
        assert "DeliveryFailure" in failures_of(sys_)
        assert sys_.network.stats["delivery_failures"] == 1

    def test_otherwise_fires_promptly_on_delivery_failure(self):
        """The handler runs when the transport gives up — long before
        the explicit deadline would have rescued the strand."""
        fallback_at = []
        sys_ = pair(
            "wait[] Go; (assert[g] Work otherwise[60] host Fallback)",
            "skip",
            f_decls="| init prop !Go",
            g_decls="| init prop !Work",
        )
        sys_.bind_host("F", "Fallback", lambda ctx: fallback_at.append(ctx.now))
        sys_.start(t=1)
        sys_.crash_instance("g")
        sys_.external_update("f::j", "Go", True)
        sys_.run_until(70.0)
        assert failures_of(sys_) == []
        assert len(fallback_at) == 1
        assert fallback_at[0] < 10.0  # not the 60s deadline

    def test_deadline_cancels_retransmission(self):
        """When an ``otherwise`` deadline gives up on a send first, the
        delivery layer stops retransmitting (no zombie traffic, no
        late DeliveryFailure)."""
        sys_ = pair(
            "wait[] Go; (assert[g] Work otherwise[0.05] skip)",
            "skip",
            f_decls="| init prop !Go",
            g_decls="| init prop !Work",
        )
        sys_.start(t=1)
        sys_.crash_instance("g")
        sys_.external_update("f::j", "Go", True)
        sys_.run_until(30.0)
        assert failures_of(sys_) == []
        assert sys_.delivery.outstanding == {}
        assert sys_.network.stats["delivery_failures"] == 0


class TestAcceptance:
    """ISSUE acceptance: with drop_probability=0.2 on a seeded Network a
    remote write completes via retransmission without any ``otherwise``
    wrapper, and dedup keeps KV state identical to the loss-free run."""

    def _run(self, drop: float, seed: int):
        sys_ = pair(
            "wait[x] Go; write(x, g); assert[g] A; assert[g] Done",
            "skip",
            f_decls="| init prop !Go\n| init data x",
            g_decls="| init prop !A\n| init prop !Done\n| init data x",
            seed=seed,
        )
        sys_.start(t=1)
        sys_.network.drop_probability = drop
        sys_.external_data("f::j", "x", {"payload": list(range(8))})
        sys_.external_update("f::j", "Go", True)
        sys_.run_until(60.0)
        return sys_

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_write_completes_under_loss_and_state_matches_lossfree(self, seed):
        lossy = self._run(0.2, seed)
        clean = self._run(0.0, seed)
        assert failures_of(lossy) == []
        assert lossy.read_state("g::j", "Done") is True
        g_lossy = lossy.instance("g").junction("j").table.values
        g_clean = clean.instance("g").junction("j").table.values
        assert g_lossy == g_clean
        # the run actually exercised loss + recovery
        assert lossy.network.stats["dropped"] >= 1

    def test_some_seed_retransmits(self):
        # at least one of the fixed seeds must recover a dropped update
        stats = [self._run(0.2, s).network.stats["retransmits"] for s in (1, 2, 3)]
        assert any(r >= 1 for r in stats)
