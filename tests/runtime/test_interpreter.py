"""Interpreter semantics: the DSL statement behaviours, one by one."""

import pytest

from repro.core.errors import (
    RetryExhausted,
    UndefError,
    VerifyFailure,
    VerifyUnknown,
)
from repro.runtime.kvtable import UNDEF

from .helpers import failures_of, pair, single_junction


class TestSequenceAndHost:
    def test_host_blocks_run_in_order(self):
        sys_ = single_junction("host A; host B")
        log = []
        sys_.bind_host("T", "A", lambda ctx: log.append("A"))
        sys_.bind_host("T", "B", lambda ctx: log.append("B"))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["A", "B"]

    def test_host_take_advances_time(self):
        sys_ = single_junction("host A; host B")
        times = []
        sys_.bind_host("T", "A", lambda ctx: (times.append(ctx.now), ctx.take(0.5)))
        sys_.bind_host("T", "B", lambda ctx: times.append(ctx.now))
        sys_.start()
        sys_.run_until(1.0)
        assert times == [0.0, 0.5]

    def test_missing_host_binding_fails_junction(self):
        sys_ = single_junction("host Nope")
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_host_exception_wrapped(self):
        sys_ = single_junction("host Boom")
        sys_.bind_host("T", "Boom", lambda ctx: 1 / 0)
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_host_write_permission_enforced(self):
        sys_ = single_junction("host H", decls="| init prop !P")
        sys_.bind_host("T", "H", lambda ctx: ctx.set("P", True))
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_host_declared_write_allowed(self):
        sys_ = single_junction("host H {P}", decls="| init prop !P")
        sys_.bind_host("T", "H", lambda ctx: ctx.set("P", True))
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is True

    def test_host_reads_params(self):
        sys_ = single_junction("host H", params="t")
        seen = []
        sys_.bind_host("T", "H", lambda ctx: seen.append(ctx["t"]))
        sys_.start(t=7)
        sys_.run_until(1.0)
        assert seen == [7.0]


class TestSaveRestoreWrite:
    def test_save_then_restore_roundtrip(self):
        sys_ = single_junction("save(n); restore(n)", decls="| init data n")
        state = {"v": 1}
        got = []
        sys_.bind_state("T", save=lambda a, i: dict(state), restore=lambda a, i, o: got.append(o))
        sys_.start()
        sys_.run_until(1.0)
        assert got == [{"v": 1}]

    def test_restore_of_undef_fails(self):
        sys_ = single_junction("restore(n)", decls="| init data n")
        sys_.bind_state("T", save=lambda a, i: None, restore=lambda a, i, o: None)
        sys_.start()
        sys_.run_until(1.0)
        assert "UndefError" in failures_of(sys_)

    def test_write_of_undef_fails(self):
        sys_ = pair("write(n, g)", "skip", f_decls="| init data n")
        sys_.start(t=1)
        sys_.run_until(1.0)
        assert "UndefError" in failures_of(sys_)

    def test_write_transfers_data(self):
        sys_ = pair(
            "save(n); write(n, g); assert[g] Work",
            "restore(n)",
            f_decls="| init data n\n| init prop !Work",
            g_decls="| init data n\n| init prop !Work",
            g_guard="Work",
        )
        received = []
        sys_.bind_state("F", save=lambda a, i: {"x": 9}, restore=lambda a, i, o: None)
        sys_.bind_state("G", save=lambda a, i: None, restore=lambda a, i, o: received.append(o))
        sys_.start(t=5)
        sys_.run_until(2.0)
        assert received == [{"x": 9}]

    def test_data_name_scoped_providers(self):
        sys_ = single_junction(
            "save(a); save(b)", decls="| init data a\n| init data b"
        )
        sys_.bind_state("T", data_name="a", save=lambda ap, i: "A")
        sys_.bind_state("T", data_name="b", save=lambda ap, i: "B")
        sys_.start()
        sys_.run_until(1.0)
        from repro.serde import SavedData

        assert isinstance(sys_.read_state("x::j", "a"), SavedData)


class TestAssertRetractWait:
    def test_local_assert(self):
        sys_ = single_junction("assert[] P", decls="| init prop !P")
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is True

    def test_remote_assert_updates_both_after_ack(self):
        sys_ = pair("assert[g] Work", "skip", f_decls="| init prop !Work",
                    g_decls="| init prop !Work", g_guard="Work")
        sys_.start(t=5)
        sys_.run_until(1.0)
        assert sys_.read_state("f::j", "Work") is True

    def test_failed_remote_assert_leaves_local_unchanged(self):
        # g is never started; the assert never acks, so f's local Work
        # stays false after the timeout — the Fig. 4 retry prerequisite
        sys_ = pair(
            "(assert[g] Work otherwise[t] skip); host Check",
            "skip",
            f_decls="| init prop !Work",
            g_decls="| init prop !Work",
        )
        src = sys_.program.source
        # start only f
        checked = []
        sys_.bind_host("F", "Check", lambda ctx: checked.append(ctx["Work"]))
        sys_.exec_start(__import__("repro.core.ast", fromlist=["ast"]).Start(
            __import__("repro.core.ast", fromlist=["ast"]).ref("f"),
            ((None, (__import__("repro.core.ast", fromlist=["ast"]).Num(0.2),)),),
        ), None)
        sys_.run_until(2.0)
        assert checked == [False]

    def test_wait_immediately_true_returns(self):
        sys_ = single_junction(
            "assert[] P; wait[] P; host After", decls="| init prop !P"
        )
        log = []
        sys_.bind_host("T", "After", lambda ctx: log.append(ctx.now))
        sys_.start()
        sys_.run_until(1.0)
        assert log == [0.0]

    def test_wait_blocks_until_remote_retract(self):
        sys_ = pair(
            "assert[g] Work; wait[] !Work; host Done",
            "retract[f] Work",
            f_decls="| init prop !Work",
            g_decls="| init prop !Work",
            g_guard="Work",
        )
        done = []
        sys_.bind_host("F", "Done", lambda ctx: done.append(ctx.now))
        sys_.start(t=5)
        sys_.run_until(2.0)
        assert len(done) == 1
        assert done[0] > 0

    def test_wait_timeout_via_otherwise(self):
        sys_ = single_junction(
            "wait[] P otherwise[0.5] host TimedOut", decls="| init prop !P"
        )
        log = []
        sys_.bind_host("T", "TimedOut", lambda ctx: log.append(ctx.now))
        sys_.start()
        sys_.run_until(2.0)
        assert log == [0.5]


class TestOtherwise:
    def test_failure_runs_handler(self):
        sys_ = single_junction(
            "(verify P otherwise host H)", decls="| init prop !P"
        )
        log = []
        sys_.bind_host("T", "H", lambda ctx: log.append("handled"))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["handled"]
        assert failures_of(sys_) == []

    def test_no_failure_skips_handler(self):
        sys_ = single_junction("(skip otherwise host H)")
        log = []
        sys_.bind_host("T", "H", lambda ctx: log.append("handled"))
        sys_.start()
        sys_.run_until(1.0)
        assert log == []

    def test_handler_failure_propagates(self):
        sys_ = single_junction(
            "(verify P otherwise verify P)", decls="| init prop !P"
        )
        sys_.start()
        sys_.run_until(1.0)
        assert "VerifyFailure" in failures_of(sys_)

    def test_nested_deadlines_outer_not_absorbed_by_inner(self):
        # outer deadline 0.3 fires while the body is stuck in an inner
        # otherwise with a long deadline; the inner handler must not
        # absorb the outer timeout
        sys_ = single_junction(
            "( (wait[] P otherwise[10] host Inner) otherwise[0.3] host Outer )",
            decls="| init prop !P",
        )
        log = []
        sys_.bind_host("T", "Inner", lambda ctx: log.append("inner"))
        sys_.bind_host("T", "Outer", lambda ctx: log.append("outer"))
        sys_.start()
        sys_.run_until(2.0)
        assert log == ["outer"]

    def test_inner_deadline_handled_then_outer_body_continues(self):
        sys_ = single_junction(
            "( (wait[] P otherwise[0.2] host Inner); host After ) otherwise[5] host Outer",
            decls="| init prop !P",
        )
        log = []
        for name in ("Inner", "After", "Outer"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(2.0)
        assert log == ["Inner", "After"]

    def test_timeout_cancels_parallel_children(self):
        sys_ = single_junction(
            "( (wait[] P + wait[] Q) otherwise[0.4] host H )",
            decls="| init prop !P\n| init prop !Q",
        )
        log = []
        sys_.bind_host("T", "H", lambda ctx: log.append(ctx.now))
        sys_.start()
        sys_.run_until(1.0)
        assert log == [0.4]

    def test_return_passes_through_otherwise(self):
        sys_ = single_junction("( (host A; return) otherwise host H ); host B")
        log = []
        for name in ("A", "B", "H"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["A"]  # return leaves the junction; no handler


class TestTransactions:
    def test_rollback_on_failure(self):
        sys_ = single_junction(
            "( <| assert[] P; verify Q |> otherwise host H )",
            decls="| init prop !P\n| init prop !Q",
        )
        sys_.bind_host("T", "H", lambda ctx: None)
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is False

    def test_commit_on_success(self):
        sys_ = single_junction("<| assert[] P |>", decls="| init prop !P")
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is True

    def test_fate_block_no_rollback(self):
        sys_ = single_junction(
            "( { assert[] P; verify Q } otherwise host H )",
            decls="| init prop !P\n| init prop !Q",
        )
        sys_.bind_host("T", "H", lambda ctx: None)
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is True

    def test_parallel_transactions_isolated(self):
        # sibling A's rollback must not wipe sibling B's committed write
        sys_ = single_junction(
            "( (<| assert[] PA; wait[] Never |> otherwise[0.2] skip)"
            "  + <| assert[] PB |> )",
            decls="| init prop !PA\n| init prop !PB\n| init prop !Never",
        )
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "PA") is False
        assert sys_.read_state("x::j", "PB") is True

    def test_return_through_transaction_commits(self):
        sys_ = single_junction(
            "<| assert[] P; return |>; host Never", decls="| init prop !P"
        )
        sys_.bind_host("T", "Never", lambda ctx: pytest.fail("unreachable"))
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "P") is True


class TestParallel:
    def test_all_branches_complete(self):
        sys_ = single_junction("host A + host B + host C")
        log = []
        for name in "ABC":
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert sorted(log) == ["A", "B", "C"]

    def test_branch_failure_fails_composition(self):
        sys_ = single_junction(
            "( (host A + verify P) otherwise host H )", decls="| init prop !P"
        )
        log = []
        sys_.bind_host("T", "A", lambda ctx: log.append("A"))
        sys_.bind_host("T", "H", lambda ctx: log.append("H"))
        sys_.start()
        sys_.run_until(1.0)
        assert "H" in log

    def test_branches_interleave_blocking(self):
        # two branches with different sleeps: total is max, not sum
        sys_ = single_junction("host A + host B; host End")
        times = []
        sys_.bind_host("T", "A", lambda ctx: ctx.take(0.5))
        sys_.bind_host("T", "B", lambda ctx: ctx.take(0.3))
        sys_.bind_host("T", "End", lambda ctx: times.append(ctx.now))
        sys_.start()
        sys_.run_until(1.0)
        assert times == [0.5]

    def test_reppar_behaves_like_par(self):
        sys_ = single_junction("host A || host B")
        log = []
        for name in "AB":
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert sorted(log) == ["A", "B"]


class TestVerify:
    def test_verify_true_passes(self):
        sys_ = single_junction("assert[] P; verify P", decls="| init prop !P")
        sys_.start()
        sys_.run_until(1.0)
        assert failures_of(sys_) == []

    def test_verify_false_fails(self):
        sys_ = single_junction("verify P", decls="| init prop !P")
        sys_.start()
        sys_.run_until(1.0)
        assert "VerifyFailure" in failures_of(sys_)

    def test_verify_at_running_instance(self):
        sys_ = pair("assert[g] Work; verify g@Work", "skip",
                    f_decls="| init prop !Work",
                    g_decls="| init prop !Work", g_guard="Work && false")
        sys_.start(t=5)
        sys_.run_until(1.0)
        assert failures_of(sys_) == []

    def test_verify_at_stopped_instance_is_unknown_error(self):
        sys_ = pair("verify g@Work", "skip",
                    f_decls="| init prop !Work", g_decls="| init prop !Work")
        # start only f
        from repro.core import ast as A

        sys_.exec_start(A.Start(A.ref("f"), ((None, (A.Num(1.0),)),)), None)
        sys_.run_until(1.0)
        names = failures_of(sys_)
        assert "VerifyUnknown" in names

    def test_verify_liveness_guard(self):
        sys_ = pair("verify live(g) -> g@Work", "skip",
                    f_decls="| init prop !Work", g_decls="| init prop !Work")
        from repro.core import ast as A

        sys_.exec_start(A.Start(A.ref("f"), ((None, (A.Num(1.0),)),)), None)
        sys_.run_until(1.0)
        assert failures_of(sys_) == []


class TestCase:
    def _case_sys(self, arms_src, decls):
        return single_junction(arms_src, decls=decls)

    def test_first_true_arm_runs(self):
        sys_ = single_junction(
            "assert[] B; case { A => host HA; break B => host HB; break otherwise => host HO }",
            decls="| init prop !A\n| init prop !B",
        )
        log = []
        for name in ("HA", "HB", "HO"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["HB"]

    def test_otherwise_when_no_match(self):
        sys_ = single_junction(
            "case { A => host HA; break otherwise => host HO }",
            decls="| init prop !A",
        )
        log = []
        for name in ("HA", "HO"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["HO"]

    def test_next_matches_below(self):
        sys_ = single_junction(
            """assert[] A; assert[] B;
            case {
              A => host HA; next
              B => host HB; break
              otherwise => host HO
            }""",
            decls="| init prop !A\n| init prop !B",
        )
        log = []
        for name in ("HA", "HB", "HO"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["HA", "HB"]

    def test_next_falls_to_otherwise(self):
        sys_ = single_junction(
            """assert[] A;
            case {
              A => host HA; next
              B => host HB; break
              otherwise => host HO
            }""",
            decls="| init prop !A\n| init prop !B",
        )
        log = []
        for name in ("HA", "HB", "HO"):
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["HA", "HO"]

    def test_reconsider_after_state_change_reruns(self):
        sys_ = single_junction(
            """assert[] A;
            case {
              A => host HA {A}; reconsider
              otherwise => host HO
            }""",
            decls="| init prop !A",
        )
        log = []

        def ha(ctx):
            log.append("HA")
            ctx.set("A", False)

        sys_.bind_host("T", "HA", ha)
        sys_.bind_host("T", "HO", lambda ctx: log.append("HO"))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["HA", "HO"]

    def test_reconsider_unchanged_state_fails(self):
        sys_ = single_junction(
            """assert[] A;
            case {
              A => host HA; reconsider
              otherwise => host HO
            }""",
            decls="| init prop !A",
        )
        sys_.bind_host("T", "HA", lambda ctx: None)
        sys_.bind_host("T", "HO", lambda ctx: None)
        sys_.start()
        sys_.run_until(1.0)
        assert "ReconsiderFailure" in failures_of(sys_)

    def test_fig4_retry_idiom(self):
        """The remote snapshot retry: the first retract is lost to a
        partition, Retried is set, reconsider re-runs the arm (the
        proposition state changed), and the second retract succeeds."""
        sys_ = pair(
            "retract[] Go; ({ assert[g] Work; wait[] !Work } otherwise[2] skip)",
            """retract[] Retried;
            case {
              Work =>
                (retract[f] Work otherwise[0.3]
                  (if !Retried then assert[] Retried else host GiveUp));
                reconsider
              otherwise => host Done
            }""",
            f_decls="| init prop !Work\n| init prop Go",
            g_decls="| init prop !Work\n| init prop !Retried",
            g_guard="Work",
            f_guard="Go",  # arriving retracts must not re-run the handshake
            latency=0.05,
        )
        log = []
        sys_.bind_host("G", "Done", lambda ctx: log.append("done"))
        sys_.bind_host("G", "GiveUp", lambda ctx: log.append("giveup"))
        sys_.start(t=5)
        # cut the link while g's first retract is in flight, heal before
        # the retry fires
        sys_.sim.call_at(0.07, lambda: sys_.network.partition({"f"}, {"g"}))
        sys_.sim.call_at(0.20, lambda: sys_.network.heal_partition())
        sys_.run_until(5.0)
        assert log == ["done"]
        assert failures_of(sys_) == []
        assert sys_.read_state("f::j", "Work") is False
        assert sys_.read_state("g::j", "Retried") is True  # retry happened


class TestRetryReturn:
    def test_retry_reruns_junction(self):
        sys_ = single_junction(
            "host Count; case { Again => host Clear {Again}; retry; break otherwise => skip }",
            decls="| init prop Again",
        )
        count = []
        sys_.bind_host("T", "Count", lambda ctx: count.append(1))
        sys_.bind_host("T", "Clear", lambda ctx: ctx.set("Again", False))
        sys_.start()
        sys_.run_until(1.0)
        assert len(count) == 2

    def test_retry_budget_exhausted(self):
        sys_ = single_junction("host Count; retry", max_retries=2)
        count = []
        sys_.bind_host("T", "Count", lambda ctx: count.append(1))
        sys_.start()
        sys_.run_until(1.0)
        assert len(count) == 3  # initial + 2 retries
        assert "RetryExhausted" in failures_of(sys_)

    def test_return_leaves_junction(self):
        sys_ = single_junction("host A; return; host B")
        log = []
        sys_.bind_host("T", "A", lambda ctx: log.append("A"))
        sys_.bind_host("T", "B", lambda ctx: log.append("B"))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["A"]

    def test_return_leaves_fate_block_only(self):
        sys_ = single_junction("{ host A; return; host B }; host C")
        log = []
        for name in "ABC":
            sys_.bind_host("T", name, lambda ctx, n=name: log.append(n))
        sys_.start()
        sys_.run_until(1.0)
        assert log == ["A", "C"]


class TestKeepAndIdx:
    def test_keep_discards_parallel_updates(self):
        sys_ = pair(
            "assert[g] Work",
            "host Busy; keep(Poke); host Check",
            f_decls="| init prop !Work",
            g_decls="| init prop !Work\n| init prop !Poke",
            g_guard="Work",
        )
        checked = []
        # while g runs, f-side update to Poke arrives and is kept away
        sys_.bind_host("G", "Busy", lambda ctx: ctx.take(0.5))
        sys_.bind_host("G", "Check", lambda ctx: checked.append(len(
            sys_.junction("g::j").table.pending)))
        sys_.start(t=5)
        sys_.sim.call_at(0.3, lambda: sys_.external_update("g::j", "Poke", True, poke=False))
        sys_.run_until(2.0)
        assert checked == [0]

    def test_idx_as_target_cursor(self):
        sys_ = make_pair_with_idx()
        sys_.start(t=5)
        sys_.run_until(2.0)
        assert sys_.read_state("g::j", "Work") is True

    def test_idx_undef_fails(self):
        sys_ = single_junction(
            "assert[tgt] P",
            decls="| init prop !P\n| idx tgt of {x}",
        )
        sys_.start()
        sys_.run_until(1.0)
        assert "UndefError" in failures_of(sys_)


def make_pair_with_idx():
    from .helpers import make_system

    sys_ = make_system(
        """
        instance_types { F, G }
        instances { f: F, g: G }
        def main(t) = start f(t) + start g(t)
        def F::j(t) =
          | init prop !Work
          | idx tgt of {g}
          host Choose {tgt};
          assert[tgt] Work
        def G::j(t) =
          | init prop !Work
          skip
        """
    )
    sys_.bind_host("F", "Choose", lambda ctx: ctx.set("tgt", "g"))
    return sys_
