"""System-level behaviour: main, lifecycle, guards, faults, tracing."""

import pytest

from repro.core import ast as A
from repro.core.errors import CompileError, StartStopFailure
from repro.runtime.faults import FaultPlan
from repro.runtime.kvtable import UNDEF

from .helpers import failures_of, make_system, single_junction

FIG3 = """
instance_types {{ TF, TG }}
instances {{ f: TF, g: TG }}
def main(t) = start f(t) + start g(t)
def TF::junction(t) =
  | init prop !Work
  | init data n
  host H1; save(n);
  {{ write(n, g); assert[g] Work; wait[] !Work }} otherwise[t] host Complain
def TG::junction(t) =
  | init prop !Work
  | init data n
  | guard Work
  restore(n); host H2; retract[f] Work
""".format()


def fig3_system(**kw):
    sys_ = make_system(FIG3, latency=0.05, **kw)
    sys_.bind_host("TF", "H1", lambda ctx: ctx.take(0.1))
    sys_.bind_host("TG", "H2", lambda ctx: ctx.take(0.2))
    sys_.bind_host("TF", "Complain", lambda ctx: None)
    sys_.bind_state("TF", save=lambda a, i: {"v": 1}, restore=lambda a, i, o: None)
    sys_.bind_state("TG", save=lambda a, i: None, restore=lambda a, i, o: None)
    return sys_


class TestMain:
    def test_main_starts_instances(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        assert sys_.instance("f").running
        assert sys_.instance("g").running

    def test_main_params_from_kwargs(self):
        sys_ = fig3_system()
        sys_.start(t=3)
        assert sys_.junction("f::junction").params["t"] == 3.0

    def test_main_params_from_config(self):
        sys_ = make_system(FIG3, config={"t": 2})
        sys_.bind_host("TF", "H1", lambda ctx: None)
        sys_.bind_state("TF", save=lambda a, i: 1, restore=lambda a, i, o: None)
        sys_.start()
        assert sys_.junction("f::junction").params["t"] == 2.0

    def test_missing_main_param(self):
        sys_ = fig3_system()
        with pytest.raises(CompileError):
            sys_.start()

    def test_double_start_rejected(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        with pytest.raises(CompileError):
            sys_.start(t=5)

    def test_full_handshake(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.run_until(2.0)
        assert failures_of(sys_) == []
        assert sys_.read_state("f::junction", "Work") is False
        # g received the data
        assert sys_.read_state("g::junction", "n") is not UNDEF


class TestLifecycle:
    def test_start_binds_params_per_junction(self):
        sys_ = make_system(
            """
            instance_types { B }
            instances { b: B }
            def main(t) = start b a(t) c(3*t)
            def B::a(t) = skip
            def B::c(t) = skip
            """
        )
        sys_.start(t=2)
        assert sys_.junction("b::a").params["t"] == 2.0
        assert sys_.junction("b::c").params["t"] == 6.0

    def test_start_already_running_fails(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        with pytest.raises(StartStopFailure):
            sys_.exec_start(A.Start(A.ref("f"), ((None, (A.Num(1.0),)),)), None)

    def test_stop_then_restart(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.run_until(1.0)
        sys_.stop_instance("g")
        assert not sys_.instance("g").running
        sys_.exec_start(A.Start(A.ref("g"), ((None, (A.Num(5.0),)),)), None)
        assert sys_.instance("g").running

    def test_stop_not_running_fails(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.stop_instance("g")
        with pytest.raises(StartStopFailure):
            sys_.stop_instance("g")

    def test_wrong_arity_start(self):
        sys_ = fig3_system()
        with pytest.raises(StartStopFailure):
            sys_.exec_start(A.Start(A.ref("f"), ((None, ()),)), None)

    def test_host_level_start_instance(self):
        sys_ = fig3_system()
        sys_.start_instance("g", junction={"t": 5})
        assert sys_.instance("g").running

    def test_unknown_instance(self):
        sys_ = fig3_system()
        with pytest.raises(CompileError):
            sys_.instance("zzz")


class TestGuards:
    def test_guard_blocks_scheduling(self):
        sys_ = single_junction("host H", guard="Go", decls="| init prop !Go")
        ran = []
        sys_.bind_host("T", "H", lambda ctx: ran.append(1))
        sys_.start()
        sys_.run_until(1.0)
        assert ran == []

    def test_external_update_enables_guard(self):
        sys_ = single_junction("retract[] Go; host H", guard="Go",
                               decls="| init prop !Go")
        ran = []
        sys_.bind_host("T", "H", lambda ctx: ran.append(1))
        sys_.start()
        sys_.run_until(0.5)
        sys_.external_update("x::j", "Go", True)
        sys_.run_until(1.0)
        assert ran == [1]

    def test_poke_respects_guard(self):
        sys_ = single_junction("host H", guard="Go", decls="| init prop !Go")
        ran = []
        sys_.bind_host("T", "H", lambda ctx: ran.append(1))
        sys_.start()
        sys_.poke("x::j")
        sys_.run_until(1.0)
        assert ran == []

    def test_at_guard_on_other_junction(self):
        sys_ = make_system(
            """
            instance_types { B }
            instances { b: B }
            def main() = start b a() c()
            def B::a() = | init prop !P
              skip
            def B::c() =
              | guard b::a@!P
              host H
            """
        )
        ran = []
        sys_.bind_host("B", "H", lambda ctx: ran.append(1))
        sys_.start()
        sys_.run_until(1.0)
        assert ran == [1]

    def test_liveness_guard(self):
        sys_ = make_system(
            """
            instance_types { W, O }
            instances { w: W, o: O }
            def main() = start w() + start o()
            def W::j() =
              | guard !live(o)
              host Alarm
            def O::j() = skip
            """
        )
        alarms = []
        sys_.bind_host("W", "Alarm", lambda ctx: alarms.append(ctx.now))
        sys_.start()
        sys_.run_until(1.0)
        assert alarms == []
        sys_.crash_instance("o")
        sys_.poke("w::j")
        sys_.run_until(2.0)
        assert len(alarms) == 1


class TestFaults:
    def test_crash_aborts_execution(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        # crash g mid-handshake
        sys_.sim.call_at(0.18, lambda: sys_.crash_instance("g"))
        sys_.run_until(10.0)
        # f times out and complains; no stuck executions
        assert sys_.junction("f::junction").status == "idle"

    def test_crashed_instance_not_alive(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.crash_instance("g")
        assert not sys_.instance("g").alive
        assert sys_.instance("g").running  # crashed, not stopped

    def test_restart_reinitializes_state(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.run_until(1.0)
        sys_.external_update("g::junction", "Work", True, poke=False)
        sys_.crash_instance("g")
        sys_.restart_instance("g")
        assert sys_.read_state("g::junction", "Work") is False

    def test_restart_requires_crash(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        with pytest.raises(StartStopFailure):
            sys_.restart_instance("g")

    def test_fault_plan_scheduling(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        fp = FaultPlan(sys_)
        fp.crash_at(1.0, "g")
        fp.restart_at(2.0, "g")
        sys_.run_until(3.0)
        assert sys_.instance("g").alive
        assert [k for (_t, k, _d) in fp.injected] == ["crash", "restart"]

    def test_partition_between(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        fp = FaultPlan(sys_)
        fp.partition_between(0.0, 1.0, {"f"}, {"g"})
        sys_.run_until(0.5)
        assert sys_.network.is_partitioned("f", "g")
        sys_.run_until(1.5)
        assert not sys_.network.is_partitioned("f", "g")


class TestExternalInterface:
    def test_external_data(self):
        sys_ = single_junction("retract[] Go; restore(n); host H", guard="Go",
                               decls="| init prop !Go\n| init data n")
        got = []
        sys_.bind_state("T", save=lambda a, i: None,
                        restore=lambda a, i, o: got.append(o))
        sys_.bind_host("T", "H", lambda ctx: None)
        sys_.start()
        sys_.external_data("x::j", "n", {"payload": 3})
        sys_.external_update("x::j", "Go", True)
        sys_.run_until(1.0)
        assert got == [{"payload": 3}]

    def test_read_state_missing_key(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        assert sys_.read_state("f::junction", "zzz") is UNDEF

    def test_junction_lookup_sole(self):
        sys_ = fig3_system()
        assert sys_.junction("f").node == "f::junction"


class TestTracing:
    def test_sched_unsched_events(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.run_until(2.0)
        kinds = [e.kind for e in sys_.telemetry.events]
        assert "sched" in kinds and "unsched" in kinds and "start_instance" in kinds

    def test_trace_hook(self):
        sys_ = fig3_system()
        seen = []
        sys_.telemetry.on_emit(lambda rec: seen.append(rec["kind"]))
        sys_.start(t=5)
        assert "start_instance" in seen

    def test_sched_count(self):
        sys_ = fig3_system()
        sys_.start(t=5)
        sys_.run_until(2.0)
        assert sys_.junction("g::junction").sched_count == 1
