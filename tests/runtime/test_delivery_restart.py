"""Regression: retransmissions vs stopped/restarted destinations.

The reliable-delivery layer retransmits updates whose ack was lost.
If the destination instance is stopped and restarted mid-flight, the
restarted junction gets a fresh KV table — but the msg-id dedup window
must carry over: it is transport state, and without it a
retransmission of an update the previous incarnation already applied
(and whose ack the network dropped) re-applies into the fresh window,
breaking exactly-once application.
"""

from collections import Counter

from repro.core.compiler import compile_program
from repro.runtime.system import System

SRC = """
instance_types { S, R }
instances { s: S, r: R }
def main() = start s() + start r()
def S::junction() =
  | init prop Go
  | init prop !P
  | guard Go
  retract[] Go;
  assert[r::junction] P
def R::junction() =
  | init prop !P
  | init prop !Never
  | guard Never
  skip
"""


def _apply_counts(sys_):
    return Counter(
        (e.node, e.attrs["msg_id"])
        for e in sys_.telemetry.events
        if e.kind == "apply"
    )


class TestDedupSurvivesRestart:
    def _run_lost_ack_restart(self):
        sys_ = System(compile_program(SRC))
        # every ack r -> s is lost, so the sender keeps retransmitting
        sys_.network.set_link_loss("r", "s", 1.0)
        sys_.start()
        sys_.run_until(0.2)  # first delivery applied at r, ack dropped
        assert _apply_counts(sys_)[("r::junction", 1)] == 1
        sys_.crash_instance("r")
        sys_.restart_instance("r")  # fresh junction state
        sys_.network.set_link_loss("r", "s", None)
        sys_.run_until(5.0)  # retransmission now reaches r and is acked
        return sys_

    def test_retransmission_never_reapplies_after_restart(self):
        sys_ = self._run_lost_ack_restart()
        dups = {k: n for k, n in _apply_counts(sys_).items() if n > 1}
        assert dups == {}, f"duplicate applies after restart: {dups}"

    def test_retransmission_is_deduped_and_acked(self):
        sys_ = self._run_lost_ack_restart()
        dedups = [e for e in sys_.telemetry.events if e.kind == "dedup"]
        assert [(e.node, e.attrs["msg_id"]) for e in dedups] == [("r::junction", 1)]
        # the ack finally got through: nothing outstanding, no failures
        assert sys_.delivery.outstanding == {}
        assert sys_.failures == []

    def test_values_still_reset_on_restart(self):
        """Only the dedup window carries over — junction *state* resets."""
        sys_ = self._run_lost_ack_restart()
        jr = sys_.junction("r::junction")
        # P was re-declared false by init_state; the retransmission was
        # suppressed, so it must NOT have re-applied P=true
        assert jr.table.values["P"] is False

    def test_timer_noop_while_destination_stopped(self):
        """Retransmissions into a stopped (never restarted) instance
        drop at the transport and exhaust cleanly at the sender."""
        sys_ = System(compile_program(SRC))
        sys_.network.set_link_loss("r", "s", 1.0)
        sys_.start()
        sys_.run_until(0.2)
        sys_.crash_instance("r")
        sys_.run_until(60.0)  # all retransmission attempts exhaust
        assert sys_.delivery.outstanding == {}
        # the stopped junction saw exactly the one pre-crash apply
        assert _apply_counts(sys_)[("r::junction", 1)] == 1
