"""Discrete-event simulator core tests."""

import pytest

from repro.runtime.sim import Simulator


class TestScheduling:
    def test_events_in_time_order(self):
        sim = Simulator()
        log = []
        sim.call_at(2.0, lambda: log.append("b"))
        sim.call_at(1.0, lambda: log.append("a"))
        sim.call_at(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.call_at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_priority_beats_insertion(self):
        sim = Simulator()
        log = []
        sim.call_at(1.0, lambda: log.append("normal"))
        sim.call_at(1.0, lambda: log.append("early"), priority=-1)
        sim.run()
        assert log == ["early", "normal"]

    def test_call_after(self):
        sim = Simulator()
        times = []
        sim.call_at(5.0, lambda: sim.call_after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.0]

    def test_now_advances(self):
        sim = Simulator()
        sim.call_at(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().call_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        h = sim.call_at(1.0, lambda: log.append("x"))
        h.cancel()
        sim.run()
        assert log == []

    def test_cancelled_flag(self):
        sim = Simulator()
        h = sim.call_at(1.0, lambda: None)
        assert not h.cancelled
        h.cancel()
        assert h.cancelled

    def test_pending_events_count(self):
        sim = Simulator()
        h1 = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_events() == 1


class TestRunUntil:
    def test_run_until_inclusive(self):
        sim = Simulator()
        log = []
        sim.call_at(1.0, lambda: log.append(1))
        sim.call_at(2.0, lambda: log.append(2))
        sim.call_at(3.0, lambda: log.append(3))
        sim.run_until(2.0)
        assert log == [1, 2]
        assert sim.now == 2.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.call_at(3.0, lambda: None)
        assert sim.peek_time() == 3.0

    def test_livelock_guard(self):
        sim = Simulator()

        def rearm():
            sim.call_after(0.0, rearm)

        rearm()
        with pytest.raises(RuntimeError):
            sim.run(max_events=1000)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def cascade(n):
            log.append(n)
            if n < 3:
                sim.call_after(1.0, lambda: cascade(n + 1))

        sim.call_at(0.0, lambda: cascade(0))
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestLazyCancellationCompaction:
    def test_heap_is_compacted_under_cancel_churn(self):
        sim = Simulator()
        for i in range(10_000):
            sim.call_at(1000.0 + i, lambda: None).cancel()
        # without compaction the heap would hold all 10k dead entries
        assert sim.queue_size() < 100
        assert sim.pending_events() == 0

    def test_pending_events_is_live_count(self):
        sim = Simulator()
        handles = [sim.call_at(1.0 + i, lambda: None) for i in range(10)]
        for h in handles[:4]:
            h.cancel()
        assert sim.pending_events() == 6
        assert sim.queue_size() == 10  # below the compaction floor

    def test_compaction_preserves_order_and_survivors(self):
        sim = Simulator()
        log = []
        keep = [sim.call_at(float(i), lambda i=i: log.append(i)) for i in range(1, 6)]
        # enough cancelled entries to force a compaction pass
        for i in range(200):
            sim.call_at(10_000.0 + i, lambda: None).cancel()
        assert sim.queue_size() < 200
        sim.run()
        assert log == [1, 2, 3, 4, 5]
        assert all(not h.cancelled for h in keep)

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        h = sim.call_at(1.0, lambda: None)
        sim.run()
        h.cancel()  # raced: the event already executed
        assert sim.pending_events() == 0
        # the stale cancel must not skew the dead-entry accounting
        sim.call_at(2.0, lambda: None)
        assert sim.pending_events() == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        h = sim.call_at(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert sim.pending_events() == 0
        assert sim.queue_size() == 1
