"""Property-based runtime tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.kvtable import KVTable, Update
from repro.runtime.sim import Simulator

KEYS = ["A", "B", "C"]


# ---------------------------------------------------------------------------
# Simulator ordering
# ---------------------------------------------------------------------------

class TestSimulatorProperties:
    @given(st.lists(st.tuples(st.floats(0, 100), st.integers(-2, 2)), max_size=30))
    @settings(max_examples=100)
    def test_events_fire_in_time_priority_order(self, specs):
        sim = Simulator()
        fired = []
        for i, (t, prio) in enumerate(specs):
            sim.call_at(t, lambda t=t, p=prio, i=i: fired.append((t, p, i)), priority=prio)
        sim.run()
        assert fired == sorted(fired)

    @given(st.lists(st.floats(0, 50), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_clock_monotone(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.call_at(t, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(times)


# ---------------------------------------------------------------------------
# KV-table local priority
# ---------------------------------------------------------------------------

#: an op is ('remote', key, value) | ('local', key, value) |
#: ('apply',) | ('keep', key)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("remote"), st.sampled_from(KEYS), st.booleans()),
        st.tuples(st.just("local"), st.sampled_from(KEYS), st.booleans()),
        st.tuples(st.just("apply")),
        st.tuples(st.just("keep"), st.sampled_from(KEYS)),
    ),
    max_size=25,
)


def run_ops(sequence, executing=True):
    t = KVTable("p::j")
    for k in KEYS:
        t.declare(k, False)
    t.executing = executing
    model = {k: False for k in KEYS}          # what values should be
    pending_model: list[tuple[str, bool]] = []  # queued remote updates
    for op in sequence:
        if op[0] == "remote":
            _, k, v = op
            t.receive(Update(key=k, value=v, src="q::j"))
            pending_model.append((k, v))
        elif op[0] == "local":
            _, k, v = op
            t.set_local(k, v)
            model[k] = v
            if executing:
                pending_model = [(pk, pv) for pk, pv in pending_model if pk != k]
        elif op[0] == "apply":
            n = t.apply_pending()
            assert n == len(pending_model)
            for k, v in pending_model:
                model[k] = v
            pending_model = []
        else:  # keep
            _, k = op
            t.keep([k])
            pending_model = [(pk, pv) for pk, pv in pending_model if pk != k]
    return t, model, pending_model


class TestKVTableProperties:
    @given(ops)
    @settings(max_examples=200)
    def test_local_priority_model(self, sequence):
        """The table always agrees with a simple reference model of the
        paper's local-priority rule."""
        t, model, pending_model = run_ops(sequence)
        for k in KEYS:
            assert t.values[k] == model[k]
        assert [(u.key, u.value) for u in t.pending] == pending_model

    @given(ops)
    @settings(max_examples=100)
    def test_effective_equals_apply(self, sequence):
        """``effective`` previews exactly what ``apply_pending`` yields."""
        t, _model, _pending = run_ops(sequence)
        preview = {k: t.effective(k) for k in KEYS}
        t.apply_pending()
        for k in KEYS:
            assert t.values[k] == preview[k]

    @given(ops)
    @settings(max_examples=100)
    def test_apply_idempotent_when_drained(self, sequence):
        t, _m, _p = run_ops(sequence)
        t.apply_pending()
        snapshot = dict(t.values)
        assert t.apply_pending() == 0
        assert t.values == snapshot


# ---------------------------------------------------------------------------
# End-to-end determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_fig3_trace_is_seed_independent_and_stable(self, seed):
        """The Fig. 3 handshake produces the identical trace regardless
        of RNG seed (no randomness on this path) — full determinism."""
        from repro.core.compiler import compile_program
        from repro.runtime.system import System

        src = """
        instance_types { F, G }
        instances { f: F, g: G }
        def main(t) = start f(t) + start g(t)
        def F::j(t) =
          | init prop !Work
          | init data n
          save(n); write(n, g); assert[g] Work; wait[] !Work
        def G::j(t) =
          | init prop !Work
          | init data n
          | guard Work
          restore(n); retract[f] Work
        """

        def run(s):
            sys_ = System(compile_program(src), seed=s)
            sys_.bind_state("F", save=lambda a, i: 1, restore=lambda a, i, o: None)
            sys_.bind_state("G", save=lambda a, i: None, restore=lambda a, i, o: None)
            sys_.start(t=5)
            sys_.run_until(5.0)
            return [(e.time, e.kind, e.node) for e in sys_.telemetry.events]

        assert run(seed) == run(0)


# ---------------------------------------------------------------------------
# Reliable-delivery bookkeeping on the table
# ---------------------------------------------------------------------------

class TestDedupWindowProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4300), st.integers(1, 256)),
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_across_window_eviction(self, retransmits):
        """A storm of more distinct message ids than the dedup window
        holds: every fresh id is accepted exactly once, and every
        retransmission arriving within the window of its original is
        suppressed — including ids old enough that the FIFO eviction
        has already cycled past them and back."""
        n = KVTable.DEDUP_WINDOW + 512
        # retransmit id `i` right after the `i + lag`-th fresh delivery
        resend_after: dict[int, list[int]] = {}
        for i, lag in retransmits:
            resend_after.setdefault(min(i + lag, n - 1), []).append(i)
        t = KVTable("p::j")
        accepted = 0
        for i in range(n):
            accepted += t.note_msg_id(i)
            for j in resend_after.get(i, ()):
                # lag <= 256 << DEDUP_WINDOW: still inside the window
                assert not t.note_msg_id(j)
        assert accepted == n
        # the filter stays bounded no matter how long the storm runs
        assert len(t._seen_msg_ids) <= KVTable.DEDUP_WINDOW

    @given(st.integers(1, 2**63))
    @settings(max_examples=50)
    def test_single_id_idempotent(self, msg_id):
        t = KVTable("p::j")
        assert t.note_msg_id(msg_id)
        assert not t.note_msg_id(msg_id)
        assert not t.note_msg_id(msg_id)


class TestRecvSeqProperties:
    @given(ops)
    @settings(max_examples=150)
    def test_recv_seq_counts_arrivals_only(self, sequence):
        """``recv_seq_of`` counts *received* remote updates per key and
        nothing else — applying, keeping, and local-priority discard
        leave it untouched.  That is what makes it usable as a late-ack
        guard: the interpreter samples it before a remote
        assert/retract, and a changed value when the (possibly
        retransmitted) ack arrives proves a newer remote update landed
        in between, so the ack's deferred local effect must be
        dropped."""
        t = KVTable("p::j")
        for k in KEYS:
            t.declare(k, False)
        t.executing = True
        arrived = {k: 0 for k in KEYS}
        for op in sequence:
            if op[0] == "remote":
                _, k, v = op
                t.receive(Update(key=k, value=v, src="q::j"))
                arrived[k] += 1
            elif op[0] == "local":
                t.set_local(op[1], op[2])
            elif op[0] == "apply":
                t.apply_pending()
            else:
                t.keep([op[1]])
            for k in KEYS:
                assert t.recv_seq_of(k) == arrived[k]

    @given(ops, st.sampled_from(KEYS))
    @settings(max_examples=100)
    def test_late_ack_guard_fires_iff_key_saw_arrivals(self, sequence, key):
        """The late-ack pattern end to end: sample the seq, run an
        arbitrary interleaving, and the sample is stale exactly when a
        remote update to that key arrived during it."""
        t = KVTable("p::j")
        for k in KEYS:
            t.declare(k, False)
        t.executing = True
        sampled = t.recv_seq_of(key)
        arrivals = 0
        for op in sequence:
            if op[0] == "remote":
                _, k, v = op
                t.receive(Update(key=k, value=v, src="q::j"))
                arrivals += k == key
            elif op[0] == "local":
                t.set_local(op[1], op[2])
            elif op[0] == "apply":
                t.apply_pending()
            else:
                t.keep([op[1]])
        assert (t.recv_seq_of(key) != sampled) == (arrivals > 0)
