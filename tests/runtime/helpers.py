"""Shared helpers for runtime tests: build small systems quickly."""

from repro.core.compiler import compile_program
from repro.runtime.system import System


def make_system(src: str, *, latency: float = 0.01, config=None, **sys_kw) -> System:
    return System(compile_program(src, config=config), latency=latency, **sys_kw)


def single_junction(body: str, decls: str = "", guard: str | None = None,
                    params: str = "", **sys_kw) -> System:
    """A system with one instance ``x`` of type ``T`` with one junction
    ``j`` whose body is ``body``.  Not auto-started."""
    guard_line = f"| guard {guard}" if guard else ""
    src = f"""
        instance_types {{ T }}
        instances {{ x: T }}
        def main({params}) = start x({params})
        def T::j({params}) =
          {decls}
          {guard_line}
          {body}
    """
    return make_system(src, **sys_kw)


def pair(f_body: str, g_body: str, f_decls: str = "", g_decls: str = "",
         g_guard: str | None = None, f_guard: str | None = None, **sys_kw) -> System:
    g_guard_line = f"| guard {g_guard}" if g_guard else ""
    f_guard_line = f"| guard {f_guard}" if f_guard else ""
    src = f"""
        instance_types {{ F, G }}
        instances {{ f: F, g: G }}
        def main(t) = start f(t) + start g(t)
        def complain() = host Complain; return
        def F::j(t) =
          {f_decls}
          {f_guard_line}
          {f_body}
        def G::j(t) =
          {g_decls}
          {g_guard_line}
          {g_body}
    """
    return make_system(src, **sys_kw)


def failures_of(system: System) -> list[str]:
    return [type(e).__name__ for (_t, _n, e) in system.failures]
