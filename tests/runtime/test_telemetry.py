"""Telemetry subsystem tests: facade, metrics registry, causal links,
ring-buffer retention, exporters, and the deprecated-API shims."""

import json
import warnings

import pytest

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    capture_systems,
    to_chrome,
    to_jsonl,
)

from .helpers import make_system, pair


class _Clock:
    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("net_sent", kind="update").inc()
        reg.counter("net_sent", kind="update").inc()
        reg.counter("net_sent", kind="ack").inc()
        assert reg.counter("net_sent", kind="update").value == 2
        assert reg.counter("net_sent", kind="ack").value == 1
        assert reg.sum("net_sent") == 3

    def test_same_handle_for_same_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a="1", b="2") is reg.counter("c", b="2", a="1")

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", node="a")
        g.inc(3)
        g.dec()
        assert g.value == 2
        g.set(7)
        assert g.value == 7

    def test_histogram_mean_is_exact(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.mean() == pytest.approx(0.002)
        assert h.count == 3

    def test_histogram_percentile_within_bucket_bounds(self):
        h = Histogram()
        for _ in range(100):
            h.observe(0.0015)  # lands in the (0.001, 0.002] bucket
        p50 = h.percentile(0.5)
        assert 0.001 <= p50 <= 0.002

    def test_histogram_overflow_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(10.0)
        assert h.nonzero_buckets() == [(float("inf"), 1)]

    def test_default_buckets_are_1_2_5_ladder(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BUCKETS[1] == pytest.approx(2e-6)
        assert DEFAULT_TIME_BUCKETS[2] == pytest.approx(5e-6)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(500.0)

    def test_sum_filters_on_labels(self):
        reg = MetricsRegistry()
        reg.counter("n", src="a", dst="b").inc(2)
        reg.counter("n", src="a", dst="c").inc(3)
        assert reg.sum("n", src="a") == 5
        assert reg.sum("n", dst="c") == 3
        assert reg.sum("missing") == 0

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b", z="1").inc()
            reg.counter("a").inc(2)
            reg.histogram("h", node="n").observe(0.5)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()


# ---------------------------------------------------------------------------
# Telemetry facade
# ---------------------------------------------------------------------------


class TestFacade:
    def test_emit_returns_monotonic_seq(self):
        tel = Telemetry(_Clock())
        a = tel.emit("x", "n")
        b = tel.emit("y", "n", parent=a)
        assert (a, b) == (1, 2)
        events = list(tel.events)
        assert events[1].parent == a

    def test_disabled_emit_is_noop(self):
        tel = Telemetry(_Clock(), enabled=False)
        assert tel.emit("x", "n") is None
        assert len(tel.events) == 0
        # metrics still work when events are off
        tel.counter("c").inc()
        assert tel.metrics.counter("c").value == 1

    def test_span_measures_sim_time(self):
        clock = _Clock()
        tel = Telemetry(clock)
        with tel.span("work", "n", detail=1):
            clock.now = 2.5
        (ev,) = list(tel.events)
        assert ev.kind == "work"
        assert ev.time == 0.0
        assert ev.attrs["dur"] == 2.5
        assert ev.attrs["detail"] == 1

    def test_span_records_error(self):
        tel = Telemetry(_Clock())
        with pytest.raises(ValueError):
            with tel.span("work", "n"):
                raise ValueError("boom")
        (ev,) = list(tel.events)
        assert "boom" in ev.attrs["error"]

    def test_on_emit_hook_sees_legacy_shape(self):
        tel = Telemetry(_Clock())
        seen = []
        tel.on_emit(seen.append)
        tel.emit("k", "n", foo=1)
        assert seen == [{"time": 0.0, "kind": "k", "node": "n", "foo": 1}]

    def test_message_binding(self):
        tel = Telemetry(_Clock())
        ev = tel.emit("send", "n")
        tel.bind_message(42, ev)
        assert tel.message_event(42) == ev
        assert tel.message_event(43) is None

    def test_ring_buffer_bounds_retention(self):
        tel = Telemetry(_Clock(), capacity=8)
        for i in range(20):
            tel.emit("e", "n", i=i)
        assert len(tel.events) == 8
        assert tel.events.total == 20
        assert tel.events.dropped == 12
        assert [e.attrs["i"] for e in tel.events] == list(range(12, 20))

    def test_capture_systems_collects_and_enables(self):
        with capture_systems() as captured:
            sys_ = make_system(
                """
                instance_types { T }
                instances { x: T }
                def main() = start x()
                def T::j() = skip
                """,
                telemetry=False,  # capture overrides the disable
            )
            sys_.start()
            sys_.run_until(1.0)
        assert captured == [sys_.telemetry]
        assert len(sys_.telemetry.events) > 0


# ---------------------------------------------------------------------------
# Causal links through a real system
# ---------------------------------------------------------------------------


def _ping_system(**kw):
    sys_ = pair(
        "assert[g] Done",
        "skip",
        g_decls="| init prop !Done",
        **kw,
    )
    sys_.start(t=1)
    sys_.run_until(5.0)
    return sys_


class TestCausalLinks:
    def test_remote_update_chain(self):
        """attempt -> sched -> send -> apply, and the ack parents back
        to the send: the trace is a concrete event structure."""
        sys_ = _ping_system()
        by_seq = {e.seq: e for e in sys_.telemetry.events}
        send = next(e for e in sys_.telemetry.events if e.kind == "send")
        sched = by_seq[send.parent]
        assert sched.kind == "sched" and sched.node == "f::j"
        attempt = by_seq[sched.parent]
        assert attempt.kind == "attempt"
        apply_ev = next(e for e in sys_.telemetry.events if e.kind == "apply")
        assert apply_ev.parent == send.seq
        assert apply_ev.node == "g::j"
        ack = next(e for e in sys_.telemetry.events if e.kind == "ack")
        assert ack.parent == send.seq

    def test_start_instance_parents_initial_attempts(self):
        sys_ = _ping_system()
        by_seq = {e.seq: e for e in sys_.telemetry.events}
        starts = {e.node: e for e in sys_.telemetry.events if e.kind == "start_instance"}
        first_f_attempt = next(
            e for e in sys_.telemetry.events if e.kind == "attempt" and e.node == "f::j"
        )
        assert first_f_attempt.parent == starts["f"].seq
        # start f/start g were executed by main's scheduling
        assert by_seq[starts["f"].parent].kind == "sched"

    def test_unsched_parents_to_sched_with_outcome(self):
        sys_ = _ping_system()
        by_seq = {e.seq: e for e in sys_.telemetry.events}
        for e in sys_.telemetry.events:
            if e.kind == "unsched":
                assert by_seq[e.parent].kind == "sched"
                assert e.attrs["outcome"] in ("ok", "failed", "cancelled")

    def test_drop_and_retransmit_parent_to_send(self):
        sys_ = pair(
            "assert[g] Done",
            "skip",
            g_decls="| init prop !Done",
        )
        sys_.network.set_link_loss("f", "g", 1.0)
        sys_.sim.call_at(0.03, lambda: sys_.network.set_link_loss("f", "g", None))
        sys_.start(t=1)
        sys_.run_until(5.0)
        send = next(e for e in sys_.telemetry.events if e.kind == "send")
        drop = next(e for e in sys_.telemetry.events if e.kind == "drop")
        retrans = next(e for e in sys_.telemetry.events if e.kind == "retransmit")
        assert drop.parent == send.seq
        assert retrans.parent == send.seq

    def test_runtime_metrics_populated(self):
        sys_ = _ping_system()
        reg = sys_.telemetry.metrics
        assert reg.sum("junction_scheds", node="f::j") >= 1
        assert reg.sum("net_sent", kind="update") >= 1
        assert reg.sum("kv_updates_applied", node="g::j") >= 1
        assert reg.sum("instance_starts", instance="g") == 1
        h = reg.histogram("junction_execution_seconds", node="f::j")
        assert h.count >= 1

    def test_disabled_telemetry_still_counts_metrics(self):
        sys_ = _ping_system(telemetry=False)
        assert len(sys_.telemetry.events) == 0
        assert sys_.read_state("g::j", "Done") is True
        assert sys_.network.stats["update_sent"] >= 1
        assert sys_.telemetry.metrics.sum("junction_scheds", node="f::j") >= 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_jsonl_round_trips(self):
        sys_ = _ping_system()
        out = sys_.telemetry.export("jsonl")
        recs = [json.loads(line) for line in out.splitlines()]
        assert len(recs) == len(sys_.telemetry.events)
        assert all({"seq", "time", "kind", "node", "parent"} <= set(r) for r in recs)

    def test_jsonl_deterministic_across_runs(self):
        a = _ping_system().telemetry.export("jsonl")
        b = _ping_system().telemetry.export("jsonl")
        assert a.encode() == b.encode()

    def test_chrome_document_shape(self):
        sys_ = _ping_system()
        doc = json.loads(sys_.telemetry.export("chrome"))
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "B", "E", "i"} <= phases
        # every B has a matching E on the same track
        begins = [(e["pid"], e["tid"]) for e in evs if e["ph"] == "B"]
        ends = [(e["pid"], e["tid"]) for e in evs if e["ph"] == "E"]
        assert sorted(begins) == sorted(ends)
        # thread metadata names each junction track
        names = {e["args"]["name"] for e in evs if e["ph"] == "M"}
        assert "f::j" in names and "g::j" in names

    def test_chrome_span_becomes_complete_slice(self):
        tel = Telemetry(_Clock())
        with tel.span("checkpoint", "n"):
            pass
        doc = to_chrome([("s", tel.events)])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["name"] == "checkpoint"

    def test_export_to_file(self, tmp_path):
        sys_ = _ping_system()
        p = tmp_path / "trace.jsonl"
        text = sys_.telemetry.export("jsonl", path=p)
        assert p.read_text() == text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(_Clock()).export("xml")

    def test_jsonl_system_label(self):
        sink = RingBufferSink()
        sink.append(TraceEvent(1, 0.0, "k", "n"))
        out = to_jsonl(sink, system="sys0")
        assert json.loads(out)["system"] == "sys0"


# ---------------------------------------------------------------------------
# Pre-telemetry API removal (the PR-2 shims are gone)
# ---------------------------------------------------------------------------


class TestShimRemoval:
    def test_pre_telemetry_shims_are_gone(self):
        sys_ = _ping_system()
        for name in ("trace", "on_trace", "trace_net_stats", "trace_log"):
            assert not hasattr(sys_, name), f"System.{name} shim should be removed"

    def test_replacement_api_does_not_warn(self):
        sys_ = pair("assert[g] Done", "skip", g_decls="| init prop !Done")
        seen = []
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sys_.telemetry.on_emit(lambda rec: seen.append(rec["kind"]))
            sys_.start(t=1)
            sys_.run_until(5.0)
            sys_.telemetry.emit("k", "n")
            _ = sys_.network.stats
            sys_.telemetry.export("jsonl")
        assert "sched" in seen and "send" in seen


# ---------------------------------------------------------------------------
# Counter type sanity (registry handles survive across layers)
# ---------------------------------------------------------------------------


def test_network_stats_is_registry_view():
    sys_ = _ping_system()
    reg = sys_.telemetry.metrics
    flat = sys_.network.stats
    assert flat["sent"] == reg.sum("net_sent")
    assert flat["update_sent"] == reg.sum("net_sent", kind="update")
    assert isinstance(reg.counter("net_sent", kind="update", src="f", dst="g"), Counter)
