"""HostContext behaviour tests."""

import pytest

from repro.core.errors import HostError

from .helpers import failures_of, single_junction


def build(body, decls, host_fns):
    sys_ = single_junction(body, decls=decls)
    for name, fn in host_fns.items():
        sys_.bind_host("T", name, fn)
    return sys_


class TestReads:
    def test_getitem_missing_raises(self):
        errors = []

        def h(ctx):
            try:
                ctx["nope"]
            except KeyError as e:
                errors.append(str(e))

        sys_ = build("host H", "", {"H": h})
        sys_.start()
        sys_.run_until(1.0)
        assert errors

    def test_get_default(self):
        seen = []
        sys_ = build("host H", "", {"H": lambda ctx: seen.append(ctx.get("nope", 42))})
        sys_.start()
        sys_.run_until(1.0)
        assert seen == [42]

    def test_undef_reads_as_default(self):
        seen = []
        sys_ = build(
            "host H", "| init data n",
            {"H": lambda ctx: seen.append(ctx.get("n", "unset"))},
        )
        sys_.start()
        sys_.run_until(1.0)
        assert seen == ["unset"]

    def test_identity_properties(self):
        seen = []

        def h(ctx):
            seen.append((ctx.instance, ctx.junction, ctx.now))

        sys_ = build("host H", "", {"H": h})
        sys_.start()
        sys_.run_until(1.0)
        assert seen == [("x", "j", 0.0)]


class TestWrites:
    def test_prop_requires_bool(self):
        sys_ = build("host H {P}", "| init prop !P", {"H": lambda ctx: ctx.set("P", 1)})
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_idx_by_position(self):
        sys_ = build(
            "host H {tgt}", "| idx tgt of {a, b, c}",
            {"H": lambda ctx: ctx.set("tgt", 1)},
        )
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "tgt") == "b"

    def test_idx_by_value(self):
        sys_ = build(
            "host H {tgt}", "| idx tgt of {a, b}",
            {"H": lambda ctx: ctx.set("tgt", "a")},
        )
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "tgt") == "a"

    def test_idx_invalid_choice(self):
        sys_ = build(
            "host H {tgt}", "| idx tgt of {a, b}",
            {"H": lambda ctx: ctx.set("tgt", "zzz")},
        )
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_data_write(self):
        sys_ = build(
            "host H {n}", "| init data n",
            {"H": lambda ctx: ctx.set("n", {"payload": 1})},
        )
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "n") == {"payload": 1}


class TestWriteContract:
    """Runtime enforcement of the ``⌊H⌉{V}`` write contract: strict
    raises; warn performs the write but records the violation."""

    DECLS = "| init prop !P | init prop !Q"
    HOST = {"H": lambda ctx: ctx.set("Q", True)}  # H only declares {P}

    def test_strict_rejects_undeclared_write(self):
        sys_ = build("host H {P}", self.DECLS, self.HOST)
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)
        assert sys_.read_state("x::j", "Q") is False

    def test_warn_performs_write_and_records_violation(self):
        sys_ = single_junction(
            "host H {P}", decls=self.DECLS,
            host_contract="warn", telemetry=True,
        )
        sys_.bind_host("T", "H", self.HOST["H"])
        sys_.start()
        sys_.run_until(1.0)
        assert failures_of(sys_) == []
        assert sys_.read_state("x::j", "Q") is True
        (ev,) = [
            e for e in sys_.telemetry.events
            if e.kind == "host_contract_violation"
        ]
        assert ev.node == "x::j"
        assert ev.attrs["key"] == "Q"
        assert ev.attrs["declared"] == ["P"]
        counter = sys_.telemetry.counter(
            "host_contract_violations", node="x::j", key="Q"
        )
        assert counter.value == 1

    def test_warn_still_rejects_unknown_state(self):
        # warn relaxes the contract, not the state model: writing a key
        # the junction never declares is still an error
        sys_ = single_junction(
            "host H {P}", decls=self.DECLS, host_contract="warn",
        )
        sys_.bind_host("T", "H", lambda ctx: ctx.set("Zed", True))
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            single_junction("skip", host_contract="loose")


class TestCost:
    def test_negative_take_rejected(self):
        sys_ = build("host H", "", {"H": lambda ctx: ctx.take(-1)})
        sys_.start()
        sys_.run_until(1.0)
        assert "HostError" in failures_of(sys_)

    def test_takes_accumulate(self):
        times = []

        def h(ctx):
            ctx.take(0.2)
            ctx.take(0.3)

        sys_ = build("host H; host After", "", {"H": h, "After": lambda ctx: times.append(ctx.now)})
        sys_.start()
        sys_.run_until(1.0)
        assert times == [0.5]

    def test_params_copy_isolated(self):
        sys_ = single_junction("host H", params="t")

        def h(ctx):
            p = ctx.params
            p["t"] = 999  # must not leak into the junction

        sys_.bind_host("T", "H", h)
        sys_.start(t=5)
        sys_.run_until(1.0)
        assert sys_.junction("x::j").params["t"] == 5.0
