"""PacketFeeder tests: rate matching, stalls, catch-up, queue limits."""

import pytest

from repro.runtime.sim import Simulator
from repro.suricatalite import PacketFeeder, Pipeline, TraceGenerator


def setup(rate=5000.0, duration=4.0, **feeder_kw):
    sim = Simulator()
    pipeline = Pipeline()
    feeder = PacketFeeder(sim, pipeline, **feeder_kw)
    gen = TraceGenerator(n_flows=50, packets_per_second=rate, duration=duration, seed=31)
    fed = feeder.feed_trace(gen.packets())
    return sim, pipeline, feeder, fed


class TestSteadyState:
    def test_all_packets_processed(self):
        sim, pipeline, feeder, fed = setup()
        feeder.start(until=5.0)
        sim.run_until(5.0)
        assert feeder.total_processed() == fed
        assert pipeline.packets_processed == fed
        assert feeder.dropped == 0

    def test_rate_tracks_arrivals(self):
        sim, _p, feeder, _f = setup(rate=5000.0)
        feeder.start(until=5.0)
        sim.run_until(5.0)
        rates = dict(feeder.rate_series(1.0))
        assert rates[1.0] == pytest.approx(5000.0, rel=0.05)
        assert rates[2.0] == pytest.approx(5000.0, rel=0.05)


class TestStalls:
    def test_stall_pauses_processing(self):
        # a stall covering a whole rate bucket shows as a zero bucket
        # (shorter stalls are masked by same-bucket catch-up)
        sim, _p, feeder, _f = setup()
        sim.call_at(0.9, lambda: feeder.stall(1.2))
        feeder.start(until=5.0)
        sim.run_until(5.0)
        rates = dict(feeder.rate_series(1.0))
        assert rates[1.0] == 0.0  # fully stalled bucket

    def test_catch_up_after_stall(self):
        sim, _p, feeder, fed = setup(duration=4.0)
        sim.call_at(0.9, lambda: feeder.stall(1.2))
        feeder.start(until=6.0)
        sim.run_until(6.0)
        rates = dict(feeder.rate_series(1.0))
        assert rates[2.0] > 5000.0  # queue drains above the arrival rate
        assert feeder.total_processed() == fed

    def test_stop(self):
        sim, _p, feeder, _f = setup()
        feeder.start(until=5.0)
        sim.call_at(1.0, feeder.stop)
        sim.run_until(5.0)
        assert feeder.total_processed() < 5001 * 4


class TestQueueLimit:
    def test_overflow_drops(self):
        sim, _p, feeder, fed = setup(rate=20000.0, duration=2.0, queue_limit=500)
        feeder.stall(2.5)  # stalled the whole trace
        feeder.start(until=3.0)
        sim.run_until(3.0)
        assert feeder.dropped > 0
        assert feeder.dropped + feeder.total_processed() + len(feeder.queue) == fed
