"""redislite tests: store, server, workload, bench driver."""

import pytest

from repro.redislite import (
    BenchDriver,
    Command,
    DataStore,
    DirectPort,
    RedisServer,
    WorkloadGenerator,
    WrongTypeError,
    djb2,
)
from repro.runtime.sim import Simulator


class TestDataStore:
    def test_get_set(self):
        s = DataStore()
        s.set("k", b"v")
        assert s.get("k") == b"v"

    def test_get_missing(self):
        assert DataStore().get("k") is None

    def test_delete(self):
        s = DataStore()
        s.set("k", b"v")
        assert s.delete("k") is True
        assert s.delete("k") is False
        assert s.get("k") is None

    def test_exists(self):
        s = DataStore()
        s.set("k", b"v")
        assert s.exists("k")
        assert not s.exists("z")

    def test_incr(self):
        s = DataStore()
        assert s.incr("c") == 1
        assert s.incr("c") == 2
        assert s.get("c") == b"2"

    def test_incr_non_integer(self):
        s = DataStore()
        s.set("c", b"abc")
        with pytest.raises(WrongTypeError):
            s.incr("c")

    def test_append(self):
        s = DataStore()
        assert s.append("k", b"ab") == 2
        assert s.append("k", b"cd") == 4
        assert s.get("k") == b"abcd"

    def test_non_bytes_rejected(self):
        with pytest.raises(WrongTypeError):
            DataStore().set("k", "text")

    def test_expiry(self):
        s = DataStore()
        s.set("k", b"v", now=0.0, ttl=10.0)
        assert s.get("k", now=5.0) == b"v"
        assert s.get("k", now=11.0) is None
        assert s.stats["expired"] == 1

    def test_expire_command(self):
        s = DataStore()
        s.set("k", b"v")
        assert s.expire("k", 5.0, now=0.0)
        assert s.get("k", now=6.0) is None

    def test_memory_accounting(self):
        s = DataStore()
        assert s.memory_bytes == 0
        s.set("k", b"x" * 100)
        m1 = s.memory_bytes
        assert m1 >= 100
        s.set("k", b"x" * 10)  # overwrite shrinks
        assert s.memory_bytes < m1
        s.delete("k")
        assert s.memory_bytes == 0

    def test_object_size(self):
        s = DataStore()
        s.set("k", b"x" * 42)
        assert s.object_size("k") == 42
        assert s.object_size("z") is None

    def test_keys_iteration_skips_expired(self):
        s = DataStore()
        s.set("a", b"1")
        s.set("b", b"1", now=0.0, ttl=1.0)
        assert sorted(s.keys(now=2.0)) == ["a"]

    def test_snapshot_restore_roundtrip(self):
        s = DataStore()
        s.set("a", b"1")
        s.set("b", b"2", now=0.0, ttl=50.0)
        snap = s.snapshot()
        s2 = DataStore()
        s2.restore(snap)
        assert s2.get("a") == b"1"
        assert s2.get("b") == b"2"
        assert s2.memory_bytes == s.memory_bytes

    def test_hit_miss_stats(self):
        s = DataStore()
        s.set("k", b"v")
        s.get("k")
        s.get("z")
        assert s.stats["hits"] == 1
        assert s.stats["misses"] == 1


class TestRedisServer:
    def test_execute_get_set(self):
        srv = RedisServer()
        reply, cost = srv.execute(Command("SET", "k", b"v"))
        assert reply.ok and cost > 0
        reply, _ = srv.execute(Command("GET", "k"))
        assert reply.value == b"v" and reply.hit

    def test_unknown_command(self):
        reply, _ = RedisServer().execute(Command("FLUSHALL", "x"))
        assert not reply.ok

    def test_cost_scales_with_payload(self):
        srv = RedisServer()
        _, c_small = srv.execute(Command("SET", "a", b"x"))
        _, c_big = srv.execute(Command("SET", "b", b"x" * 100_000))
        assert c_big > c_small

    def test_checkpoint_restore(self):
        srv = RedisServer()
        for i in range(50):
            srv.execute(Command("SET", f"k{i}", b"v"))
        snap, cost = srv.checkpoint()
        assert cost > srv.cost.checkpoint_base
        srv2 = RedisServer()
        srv2.restore(snap)
        assert srv2.store.size() == 50

    def test_checkpoint_cost_scales_with_keys(self):
        small = RedisServer()
        big = RedisServer()
        for i in range(1000):
            big.execute(Command("SET", f"k{i}", b"v"))
        _, c_small = small.checkpoint()
        _, c_big = big.checkpoint()
        assert c_big > c_small


class TestWorkload:
    def test_deterministic(self):
        a = [c.key for c in WorkloadGenerator(seed=1).commands(50)]
        b = [c.key for c in WorkloadGenerator(seed=1).commands(50)]
        assert a == b

    def test_get_ratio(self):
        wl = WorkloadGenerator(get_ratio=1.0, seed=2)
        assert all(c.op == "GET" for c in wl.commands(100))
        wl = WorkloadGenerator(get_ratio=0.0, seed=2)
        assert all(c.op == "SET" for c in wl.commands(100))

    def test_skew_concentrates_on_hot_keys(self):
        wl = WorkloadGenerator(n_keys=1000, skew=(0.1, 0.9), seed=3)
        hot = {f"key:{i:08d}" for i in range(100)}
        picks = [wl.pick_key() for _ in range(2000)]
        hot_fraction = sum(1 for k in picks if k in hot) / len(picks)
        assert 0.85 < hot_fraction < 0.95

    def test_shard_weights_bias(self):
        wl = WorkloadGenerator(n_keys=1000, shard_weights=(4, 2, 1, 1), seed=4)
        counts = [0, 0, 0, 0]
        for _ in range(4000):
            counts[djb2(wl.pick_key()) % 4] += 1
        assert counts[0] > counts[1] > counts[2] * 1.2

    def test_size_classes(self):
        wl = WorkloadGenerator(
            n_keys=300, size_class_weights=(0.5, 0.3, 0.2), seed=5
        )
        sizes = [wl.key_size(k) for k in wl._keys]
        assert any(s <= 4096 for s in sizes)
        assert any(4096 < s <= 65536 for s in sizes)
        assert any(s > 65536 for s in sizes)

    def test_preload_covers_all_keys(self):
        wl = WorkloadGenerator(n_keys=17)
        assert len(list(wl.preload_commands())) == 17

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            WorkloadGenerator(bogus=1)

    def test_djb2_reference_values(self):
        # djb2("") == 5381; matching the classic algorithm
        assert djb2("") == 5381
        assert djb2("a") == (5381 * 33 + ord("a")) & 0xFFFFFFFF


class TestBenchDriver:
    def _setup(self, **wl_kw):
        sim = Simulator()
        server = RedisServer()
        port = DirectPort(sim, server)
        wl = WorkloadGenerator(n_keys=100, seed=6, **wl_kw)
        for cmd in wl.preload_commands():
            server.execute(cmd)
        return sim, server, port, wl

    def test_closed_loop_completes(self):
        sim, server, port, wl = self._setup()
        res = BenchDriver(sim, port, wl, clients=4).run(1.0)
        assert res.count > 100
        assert res.finished_at >= 1.0

    def test_throughput_bounded_by_service_rate(self):
        sim, server, port, wl = self._setup()
        res = BenchDriver(sim, port, wl, clients=8).run(2.0)
        rate = res.count / 2.0
        assert rate <= 1.0 / server.cost.per_command * 1.1

    def test_stall_creates_dip(self):
        sim, server, port, wl = self._setup()
        driver = BenchDriver(sim, port, wl, clients=4)
        sim.call_at(1.0, lambda: port.stall(0.5))
        res = driver.run(3.0)
        series = dict(res.qps_series(0.5))
        assert series[1.0] < series[0.5] * 0.5  # the stalled bucket

    def test_latency_percentiles_ordered(self):
        sim, server, port, wl = self._setup()
        res = BenchDriver(sim, port, wl, clients=8).run(1.0)
        assert res.percentile(0.5) <= res.percentile(0.99)

    def test_cdf_monotone(self):
        sim, server, port, wl = self._setup()
        res = BenchDriver(sim, port, wl, clients=4).run(0.5)
        cdf = res.cdf()
        assert cdf[-1][1] == 1.0
        assert all(cdf[i][0] <= cdf[i + 1][0] for i in range(len(cdf) - 1))

    def test_cumulative_by_class(self):
        sim, server, port, wl = self._setup()
        res = BenchDriver(sim, port, wl, clients=4).run(1.0)
        data = res.cumulative_by(lambda c: djb2(c.key) % 2, dt=0.25)
        for series in data["series"].values():
            assert all(series[i] <= series[i + 1] for i in range(len(series) - 1))
        totals = [s[-1] for s in data["series"].values()]
        assert sum(totals) == res.count

    def test_think_time_slows_clients(self):
        sim, server, port, wl = self._setup()
        res_fast = BenchDriver(sim, port, wl, clients=2).run(1.0)
        sim2, server2, port2, wl2 = self._setup()
        res_slow = BenchDriver(sim2, port2, wl2, clients=2, think_time=0.01).run(1.0)
        assert res_slow.count < res_fast.count
