"""suricatalite tests: packets, flows, rules, pipeline, traces."""

import pytest

from repro.suricatalite import (
    FiveTuple,
    FlowTable,
    HookNode,
    Packet,
    Pipeline,
    Rule,
    RuleSet,
    TraceGenerator,
)


def ft(src_port=1234, dst_port=80, proto="tcp"):
    return FiveTuple("10.0.0.1", "192.168.0.1", src_port, dst_port, proto)


def pkt(ts=0.0, size=100, payload=b"", flow=None, app="http"):
    return Packet(ts=ts, flow=flow or ft(), size=size, payload=payload, app=app)


class TestPackets:
    def test_five_tuple_hash_deterministic(self):
        assert ft().hash() == ft().hash()

    def test_different_tuples_usually_differ(self):
        hashes = {ft(src_port=p).hash() for p in range(1000, 1100)}
        assert len(hashes) > 90

    def test_str_form(self):
        assert str(ft()) == "10.0.0.1:1234->192.168.0.1:80/tcp"


class TestFlowTable:
    def test_update_creates_and_accumulates(self):
        t = FlowTable()
        t.update(pkt(ts=1.0, size=100))
        rec = t.update(pkt(ts=2.0, size=50))
        assert rec.packets == 2
        assert rec.bytes == 150
        assert rec.first_seen == 1.0
        assert rec.last_seen == 2.0
        assert t.size() == 1

    def test_distinct_flows(self):
        t = FlowTable()
        t.update(pkt())
        t.update(pkt(flow=ft(src_port=9)))
        assert t.size() == 2

    def test_idle_eviction(self):
        t = FlowTable(idle_timeout=10.0)
        t.update(pkt(ts=0.0))
        t.update(pkt(ts=5.0, flow=ft(src_port=9)))
        assert t.evict_idle(now=12.0) == 1
        assert t.size() == 1

    def test_snapshot_restore(self):
        t = FlowTable()
        t.update(pkt(ts=1.0))
        t.update(pkt(ts=2.0, flow=ft(src_port=9)))
        snap = t.snapshot()
        t2 = FlowTable()
        t2.restore(snap)
        assert t2.size() == 2
        assert t2.flows[str(ft())].packets == 1


class TestRules:
    def test_port_and_proto_match(self):
        r = Rule(1, "t", proto="tcp", dst_port=80)
        table = FlowTable()
        flow = table.update(pkt())
        assert r.matches(pkt(), flow)
        assert not r.matches(pkt(flow=ft(proto="udp")), flow)

    def test_content_match(self):
        r = Rule(1, "t", content=b"evil")
        table = FlowTable()
        flow = table.update(pkt(payload=b"very evil payload"))
        assert r.matches(pkt(payload=b"very evil payload"), flow)
        assert not r.matches(pkt(payload=b"benign"), flow)

    def test_threshold(self):
        r = Rule(1, "t", min_flow_packets=3)
        table = FlowTable()
        flow = table.update(pkt())
        assert not r.matches(pkt(), flow)
        table.update(pkt())
        table.update(pkt())
        assert r.matches(pkt(), flow)

    def test_ruleset_collects_alerts(self):
        rs = RuleSet((Rule(7, "x", content=b"bad"),))
        table = FlowTable()
        flow = table.update(pkt(payload=b"bad stuff"))
        fired = rs.inspect(pkt(ts=3.0, payload=b"bad stuff"), flow)
        assert len(fired) == 1
        assert fired[0].sid == 7
        assert flow.alerts == 1
        assert rs.alerts == fired


class TestPipeline:
    def test_process_counts_and_costs(self):
        p = Pipeline()
        cost = p.process(pkt())
        assert cost > 0
        assert p.packets_processed == 1
        assert p.ctx.flow_table.size() == 1

    def test_bad_packet_dropped_before_detect(self):
        p = Pipeline()
        p.process(pkt(size=0))
        assert p.ctx.dropped == 1
        assert p.ctx.flow_table.size() == 0

    def test_default_ruleset_fires_on_malicious_payload(self):
        p = Pipeline()
        p.process(pkt(payload=b"GET /gate.php HTTP/1.1"))
        assert len(p.ctx.alerts) == 1

    def test_hook_node_insertion(self):
        p = Pipeline()
        seen = []

        def hook(packet, ctx):
            seen.append(packet.size)
            return packet

        p.insert_after("flow", HookNode("csaw-junction", hook))
        assert "csaw-junction" in p.node_names()
        p.process(pkt(size=77))
        assert seen == [77]

    def test_hook_can_drop(self):
        p = Pipeline()
        p.insert_after("decode", HookNode("filter", lambda pk, ctx: None))
        p.process(pkt())
        # the flow stage never saw the packet
        assert p.ctx.flow_table.size() == 0

    def test_insert_after_unknown_node(self):
        with pytest.raises(KeyError):
            Pipeline().insert_after("zzz", HookNode("h", lambda pk, c: pk))

    def test_checkpoint_restore(self):
        p = Pipeline()
        for i in range(20):
            p.process(pkt(ts=float(i), flow=ft(src_port=1000 + i)))
        snap, cost = p.checkpoint()
        assert cost > Pipeline.CHECKPOINT_BASE
        p2 = Pipeline()
        p2.restore(snap)
        assert p2.ctx.flow_table.size() == 20
        assert p2.packets_processed == 20


class TestTraces:
    def test_deterministic(self):
        a = [(str(p.flow), p.size) for p in TraceGenerator(seed=1).packets(100)]
        b = [(str(p.flow), p.size) for p in TraceGenerator(seed=1).packets(100)]
        assert a == b

    def test_packet_count_and_rate(self):
        gen = TraceGenerator(packets_per_second=1000, duration=2)
        pkts = list(gen.packets())
        assert len(pkts) == 2000
        assert pkts[-1].ts == pytest.approx(2.0, abs=0.01)

    def test_flow_reuse(self):
        gen = TraceGenerator(n_flows=10, seed=2)
        flows = {str(p.flow) for p in gen.packets(500)}
        assert len(flows) <= 10

    def test_heavy_tail(self):
        """A few flows should carry a large share of packets."""
        gen = TraceGenerator(n_flows=100, seed=3)
        counts = {}
        for p in gen.packets(5000):
            counts[str(p.flow)] = counts.get(str(p.flow), 0) + 1
        top = sorted(counts.values(), reverse=True)
        assert sum(top[:10]) > 0.3 * 5000

    def test_apps_varied(self):
        gen = TraceGenerator(n_flows=200, seed=4)
        apps = {p.app for p in gen.packets(2000)}
        assert len(apps) >= 3

    def test_suspicious_payloads_present(self):
        gen = TraceGenerator(n_flows=50, suspicious_fraction=0.05, seed=5)
        assert any(p.payload for p in gen.packets(1000))

    def test_sharding_unevenness(self):
        """5-tuple hashes spread flows unevenly across 4 shards — the
        stepped curves of Fig. 24b."""
        gen = TraceGenerator(n_flows=100, seed=7)
        counts = [0, 0, 0, 0]
        for p in gen.packets(4000):
            counts[p.flow.hash() % 4] += 1
        assert max(counts) > 1.5 * min(counts)
