"""curlite tests: file server, transfer client, sweeps."""

import pytest

from repro.curlite import (
    FileServer,
    LinkModel,
    STANDARD_SIZES,
    SweepResult,
    TransferClient,
    run_sweep,
    size_name,
)
from repro.runtime.sim import Simulator


def setup(request_cost=0.001):
    sim = Simulator()
    server = FileServer(LinkModel(bandwidth=1_000_000, rtt=0.01), request_cost=request_cost)
    server.put("small", 10_000)
    server.put("big", 1_000_000)
    client = TransferClient(sim, server, chunk_size=100_000)
    return sim, server, client


class TestFileServer:
    def test_put_and_size(self):
        server = FileServer()
        server.put("f", 123)
        assert server.size_of("f") == 123

    def test_missing_file(self):
        with pytest.raises(KeyError):
            FileServer().size_of("zzz")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileServer().put("f", -1)

    def test_standard_corpus(self):
        server = FileServer()
        server.put_standard_corpus()
        assert server.size_of(size_name(1_200_000_000)) == 1_200_000_000
        assert len(server.files()) == len(STANDARD_SIZES)

    def test_size_name(self):
        assert size_name(1_000) == "file-1KB"
        assert size_name(10_000_000) == "file-10MB"
        assert size_name(500) == "file-500B"

    def test_link_transfer_time(self):
        link = LinkModel(bandwidth=1000)
        assert link.transfer_time(500) == 0.5


class TestTransferClient:
    def test_download_completes(self):
        sim, server, client = setup()
        done = []
        client.download("small", done.append)
        sim.run()
        (res,) = done
        assert res.size == 10_000
        # rtt + request cost + transfer
        assert res.elapsed >= 0.01 + 0.001

    def test_bigger_takes_longer(self):
        sim, server, client = setup()
        done = {}
        client.download("small", lambda r: done.__setitem__("s", r))
        sim.run()
        client.download("big", lambda r: done.__setitem__("b", r))
        sim.run()
        assert done["b"].elapsed > done["s"].elapsed

    def test_once_audit_fires_once(self):
        sim, server, client = setup()
        audits = []

        def hook(state, cont):
            audits.append(dict(state))
            cont()

        done = []
        client.download("big", done.append, audit=hook, audit_mode="once")
        sim.run()
        assert len(audits) == 1
        assert audits[0]["done"] == 0  # captured at invocation start
        assert done[0].audits == 1

    def test_continuous_audit_progress(self):
        sim, server, client = setup()
        audits = []

        def hook(state, cont):
            audits.append(state["done"])
            cont()

        done = []
        client.download("big", done.append, audit=hook, audit_mode="continuous")
        sim.run()
        assert len(audits) >= 2
        assert audits == sorted(audits)
        assert audits[-1] == 1_000_000

    def test_audit_barrier_blocks_transfer(self):
        """The transfer must not outrun an unacknowledged audit."""
        sim, server, client = setup()
        held = []

        def hook(state, cont):
            held.append(cont)  # never continue

        done = []
        client.download("big", done.append, audit=hook, audit_mode="continuous")
        sim.run()
        assert done == []  # stuck at the first audit barrier
        held[0]()  # release
        sim.run()
        assert len(held) > 1 or done  # progress resumed

    def test_bad_mode_rejected(self):
        sim, server, client = setup()
        with pytest.raises(ValueError):
            client.download("small", lambda r: None, audit_mode="sometimes")

    def test_audit_mode_requires_hook(self):
        sim, server, client = setup()
        with pytest.raises(ValueError):
            client.download("small", lambda r: None, audit_mode="once")

    def test_digest_changes_with_progress(self):
        sim, server, client = setup()
        digests = []
        client.download(
            "big",
            lambda r: None,
            audit=lambda s, c: (digests.append(s["digest"]), c()),
            audit_mode="continuous",
        )
        sim.run()
        assert len(set(digests)) == len(digests)


class TestSweep:
    def test_sweep_collects_all_cells(self):
        sim = Simulator()
        server = FileServer(LinkModel(bandwidth=10_000_000, rtt=0.001), request_cost=0.001)
        for s in (1_000, 100_000):
            server.put(size_name(s), s)
        res = run_sweep(
            sim, server, [1_000, 100_000],
            {"original": ("none", None)},
            repetitions=3,
        )
        assert res.sizes() == [1_000, 100_000]
        assert len(res.samples[(1_000, "original")]) == 3

    def test_overhead_percent(self):
        r = SweepResult()
        for _ in range(3):
            r.add(10, "original", 1.0)
            r.add(10, "audited", 1.2)
        assert r.overhead_percent(10, "audited") == pytest.approx(20.0)

    def test_stdev(self):
        r = SweepResult()
        r.add(1, "c", 1.0)
        r.add(1, "c", 3.0)
        assert r.mean(1, "c") == 2.0
        assert r.stdev(1, "c") == pytest.approx(2.0 ** 0.5)

    def test_stdev_single_sample(self):
        r = SweepResult()
        r.add(1, "c", 1.0)
        assert r.stdev(1, "c") == 0.0
