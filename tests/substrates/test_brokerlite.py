"""brokerlite substrate: partition log, consumer groups, server."""

import pytest

from repro.brokerlite import (
    BrokerRequest,
    BrokerServer,
    GroupCoordinator,
    PartitionLog,
    Record,
    partition_for,
)


class TestPartitionLog:
    def test_append_assigns_dense_offsets(self):
        log = PartitionLog(0)
        assert [log.append(f"k{i}", b"v") for i in range(5)] == [0, 1, 2, 3, 4]
        assert log.next_offset == 5

    def test_read_range(self):
        log = PartitionLog(0)
        for i in range(10):
            log.append(f"k{i}", str(i).encode())
        got = log.read(3, max_records=4)
        assert [r.offset for r in got] == [3, 4, 5, 6]
        assert got[0].key == "k3"

    def test_read_past_end_is_empty(self):
        log = PartitionLog(0)
        log.append("k", b"v")
        assert log.read(5) == []

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            PartitionLog(0).read(-1)

    def test_snapshot_restore_round_trip(self):
        log = PartitionLog(2)
        for i in range(4):
            log.append(f"k{i}", b"v%d" % i, ts=0.5 * i)
        clone = PartitionLog(2)
        clone.restore(log.snapshot())
        assert clone.records == log.records
        assert clone.next_offset == log.next_offset

    def test_record_wire_round_trip(self):
        rec = Record(offset=3, key="k", value=b"v", ts=1.5)
        assert Record.from_list(rec.as_list()) == rec

    def test_partition_for_is_stable_and_in_range(self):
        for key in ("a", "user123", "x" * 100):
            p = partition_for(key, 7)
            assert 0 <= p < 7
            assert partition_for(key, 7) == p
        with pytest.raises(ValueError):
            partition_for("k", 0)


class TestGroupCoordinator:
    def test_join_assigns_all_partitions(self):
        g = GroupCoordinator("g", 6)
        g.join("a")
        assert g.partitions_of("a") == [0, 1, 2, 3, 4, 5]

    def test_rebalance_on_membership_change(self):
        g = GroupCoordinator("g", 6)
        g.join("a")
        gen1 = g.generation
        g.join("b")
        assert g.generation > gen1
        assert sorted(g.partitions_of("a") + g.partitions_of("b")) == list(range(6))
        assert g.partitions_of("a") == [0, 1, 2]

    def test_uneven_split_first_members_get_extra(self):
        g = GroupCoordinator("g", 7)
        g.join("b")
        g.join("a")
        g.join("c")
        assert len(g.partitions_of("a")) == 3
        assert len(g.partitions_of("b")) == 2
        assert len(g.partitions_of("c")) == 2

    def test_leave_reassigns(self):
        g = GroupCoordinator("g", 4)
        g.join("a")
        g.join("b")
        g.leave("a")
        assert g.partitions_of("b") == [0, 1, 2, 3]
        assert g.partitions_of("a") == []

    def test_join_idempotent(self):
        g = GroupCoordinator("g", 4)
        g.join("a")
        gen = g.generation
        g.join("a")
        assert g.generation == gen

    def test_owner_of(self):
        g = GroupCoordinator("g", 4)
        g.join("a")
        g.join("b")
        assert g.owner_of(0) == "a"
        assert g.owner_of(3) == "b"

    def test_resize_rebalances(self):
        g = GroupCoordinator("g", 4)
        g.join("a")
        g.join("b")
        g.resize(8)
        assert sorted(g.partitions_of("a") + g.partitions_of("b")) == list(range(8))

    def test_assignment_deterministic_in_membership(self):
        g1 = GroupCoordinator("g", 5)
        g2 = GroupCoordinator("g", 5)
        for m in ("x", "y", "z"):
            g1.join(m)
        for m in ("z", "x", "y"):
            g2.join(m)
        assert g1.assignment == g2.assignment


class TestBrokerServer:
    def test_pub_fetch_round_trip(self):
        s = BrokerServer()
        r, cost = s.execute(BrokerRequest(op="PUB", partition=1, key="k", value=b"v"))
        assert r.ok and r.offset == 0 and cost > 0
        r, _ = s.execute(BrokerRequest(op="FETCH", partition=1, offset=0))
        assert r.records == [[0, "k", b"v", 0.0]]
        assert r.high_water == 1

    def test_commit_is_monotone(self):
        s = BrokerServer()
        s.execute(BrokerRequest(op="COMMIT", partition=0, group="g", offset=5))
        r, _ = s.execute(BrokerRequest(op="COMMIT", partition=0, group="g", offset=3))
        assert r.offset == 5
        r, _ = s.execute(BrokerRequest(op="OFFSET", partition=0, group="g"))
        assert r.offset == 5

    def test_offset_defaults_to_zero(self):
        r, _ = BrokerServer().execute(BrokerRequest(op="OFFSET", partition=0, group="g"))
        assert r.ok and r.offset == 0

    def test_unknown_op_not_ok(self):
        r, _ = BrokerServer().execute(BrokerRequest(op="NOPE", partition=0))
        assert not r.ok

    def test_fetch_cost_scales_with_records(self):
        s = BrokerServer()
        for i in range(10):
            s.execute(BrokerRequest(op="PUB", partition=0, key="k", value=b"x" * 100))
        _, c1 = s.execute(BrokerRequest(op="FETCH", partition=0, offset=0, max_records=1))
        _, c10 = s.execute(BrokerRequest(op="FETCH", partition=0, offset=0, max_records=10))
        assert c10 > c1

    def test_snapshot_restore_round_trip(self):
        s = BrokerServer()
        s.execute(BrokerRequest(op="PUB", partition=2, key="k", value=b"v"))
        s.execute(BrokerRequest(op="COMMIT", partition=2, group="g", offset=1))
        clone = BrokerServer()
        clone.restore(s.snapshot())
        assert clone.records_stored() == 1
        assert clone.commits == {("g", 2): 1}

    def test_drain_records_preserves_order_and_empties(self):
        s = BrokerServer()
        for p in (1, 0):
            for i in range(3):
                s.execute(BrokerRequest(op="PUB", partition=p, key=f"k{p}", value=b"%d" % i))
        records, cost = s.drain_records()
        assert [(r.key, r.value) for r in records] == [
            ("k0", b"0"), ("k0", b"1"), ("k0", b"2"),
            ("k1", b"0"), ("k1", b"1"), ("k1", b"2"),
        ]
        assert cost > 0
        assert s.records_stored() == 0
