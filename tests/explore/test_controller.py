"""Controlled-scheduler mode of the simulator + schedule controllers."""

import random

import pytest

from repro.explore import RecordingController, Schedule, ScheduleDivergence
from repro.runtime.engine import ScheduleController, use_controller
from repro.runtime.sim import Simulator
from repro.semantics.commute import Footprint


def _sched(sim, order, t, name, priority=0, footprint=None):
    sim.call_at(
        t, lambda: order.append(name), priority, label=name, footprint=footprint
    )


class TestControlledStep:
    def test_no_controller_is_untouched(self):
        sim = Simulator()
        order = []
        _sched(sim, order, 1.0, "b")
        _sched(sim, order, 1.0, "a")
        sim.run()
        assert order == ["b", "a"]  # insertion order

    def test_base_controller_reproduces_default_order(self):
        sim = Simulator()
        sim.controller = ScheduleController()
        order = []
        _sched(sim, order, 1.0, "b")
        _sched(sim, order, 1.0, "a")
        _sched(sim, order, 2.0, "c")
        sim.run()
        assert order == ["b", "a", "c"]

    def test_choice_points_only_for_coenabled_sets(self):
        """Events at different times or priorities never form one
        choice point (priorities encode runtime-internal ordering)."""
        seen = []

        class Spy(ScheduleController):
            def choose(self, time, events):
                seen.append([e.label for e in events])
                return 0

        sim = Simulator()
        sim.controller = Spy()
        order = []
        _sched(sim, order, 1.0, "pump", priority=-1)
        _sched(sim, order, 1.0, "d1")
        _sched(sim, order, 1.0, "d2")
        _sched(sim, order, 2.0, "later")
        sim.run()
        assert order == ["pump", "d1", "d2", "later"]
        assert seen == [["d1", "d2"]]  # the only >1 co-enabled set

    def test_controller_choice_reorders(self):
        class PickLast(ScheduleController):
            def choose(self, time, events):
                return len(events) - 1

        sim = Simulator()
        sim.controller = PickLast()
        order = []
        for name in ("a", "b", "c"):
            _sched(sim, order, 1.0, name)
        sim.run()
        # repeatedly picking the last of the co-enabled set
        assert order == ["c", "b", "a"]

    def test_cancelled_events_never_reach_controller(self):
        seen = []

        class Spy(ScheduleController):
            def choose(self, time, events):
                seen.append([e.label for e in events])
                return 0

        sim = Simulator()
        sim.controller = Spy()
        order = []
        h = sim.call_at(1.0, lambda: order.append("dead"), label="dead")
        _sched(sim, order, 1.0, "a")
        _sched(sim, order, 1.0, "b")
        h.cancel()
        sim.run()
        assert order == ["a", "b"]
        assert seen == [["a", "b"]]

    def test_use_controller_attaches_at_construction(self):
        ctl = ScheduleController()
        with use_controller(lambda: ctl):
            sim = Simulator()
        assert sim.controller is ctl
        assert Simulator().controller is None  # outside the block


class TestRecordingController:
    def _run(self, prefix=(), tail="first", rng=None, expect=None):
        ctl = RecordingController(
            tuple(prefix), tail=tail, rng=rng, expect_labels=expect
        )
        sim = Simulator()
        sim.controller = ctl
        order = []
        for name in ("a", "b", "c"):
            _sched(sim, order, 1.0, name)
        sim.run()
        return ctl, order

    def test_records_default_run(self):
        ctl, order = self._run()
        assert order == ["a", "b", "c"]
        sched = ctl.schedule("unit")
        assert sched.choices == [0, 0]  # the final singleton is no choice
        assert sched.labels == ["a", "b"]

    def test_prefix_replays(self):
        ctl, order = self._run(prefix=(2, 1))
        assert order == ["c", "b", "a"]

    def test_out_of_range_prefix_diverges(self):
        with pytest.raises(ScheduleDivergence):
            self._run(prefix=(7,))

    def test_label_mismatch_diverges(self):
        with pytest.raises(ScheduleDivergence):
            self._run(prefix=(0,), expect=["zzz"])

    def test_label_match_passes(self):
        ctl, order = self._run(prefix=(1,), expect=["b"])
        assert order[0] == "b"

    def test_random_tail_is_seed_deterministic(self):
        _, o1 = self._run(tail="random", rng=random.Random(42))
        _, o2 = self._run(tail="random", rng=random.Random(42))
        assert o1 == o2

    def test_random_tail_needs_rng(self):
        with pytest.raises(ValueError):
            RecordingController(tail="random")

    def test_footprints_recorded(self):
        ctl = RecordingController()
        sim = Simulator()
        sim.controller = ctl
        fp = Footprint.make(writes=["n#k"])
        sim.call_at(1.0, lambda: None, label="x", footprint=fp)
        sim.call_at(1.0, lambda: None, label="y")
        sim.run()
        (cp,) = ctl.trace
        assert cp.footprints == [fp, None]


class TestScheduleSerialization:
    def test_round_trip(self):
        s = Schedule(choices=[0, 2, 1], labels=["a", None, "c"], scenario="t")
        s2 = Schedule.loads(s.dumps())
        assert s2.choices == s.choices
        assert s2.labels == s.labels
        assert s2.scenario == "t"
        assert s2.schedule_id == s.schedule_id

    def test_schedule_id_depends_on_choices(self):
        a = Schedule(choices=[0, 1])
        b = Schedule(choices=[1, 0])
        assert a.schedule_id != b.schedule_id

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError):
            Schedule.from_json({"version": 99})
