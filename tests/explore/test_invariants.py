"""Invariant layer: registry, built-ins, linearizability checker."""

import pytest

from repro.core.compiler import compile_program
from repro.explore import (
    INVARIANTS,
    Op,
    check_invariants,
    check_linearizable,
    get_invariants,
    register_invariant,
)
from repro.runtime.kvtable import Update
from repro.runtime.system import System

SRC = """
instance_types { T }
instances { x: T }
def main() = start x()
def T::junction() =
  | init prop !P
  | init prop !Never
  | guard Never
  skip
"""


def _system():
    sys_ = System(compile_program(SRC))
    sys_.start()
    sys_.run_until(1.0)
    return sys_


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("no-failures", "convergence", "at-most-once", "linearizable"):
            assert name in INVARIANTS

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_invariants(["definitely-not-registered"])

    def test_user_registered_invariant_runs(self):
        name = "test-only-flag-false"
        try:

            @register_invariant(name, "P must end false")
            def _check(system, obs):
                jr = system.junction("x::junction")
                return [] if jr.table.values["P"] is False else ["P ended true"]

            sys_ = _system()
            assert check_invariants(sys_, {}, (name,)) == []
            sys_.junction("x::junction").table.values["P"] = True
            assert check_invariants(sys_, {}, (name,)) == [(name, "P ended true")]
        finally:
            INVARIANTS.pop(name, None)


class TestBuiltins:
    def test_clean_system_passes_all(self):
        sys_ = _system()
        names = ("no-failures", "convergence", "at-most-once")
        assert check_invariants(sys_, {}, names) == []

    def test_no_failures_reports(self):
        sys_ = _system()
        sys_.failures.append((0.5, "x::junction", RuntimeError("boom")))
        out = check_invariants(sys_, {}, ("no-failures",))
        assert len(out) == 1 and out[0][0] == "no-failures"
        assert "boom" in out[0][1]

    def test_convergence_flags_undrained_pending(self):
        sys_ = _system()
        jr = sys_.junction("x::junction")
        jr.table.enqueue_pending([Update(key="P", value=True, src="ghost")])
        out = check_invariants(sys_, {}, ("convergence",))
        assert len(out) == 1
        assert "pending" in out[0][1]

    def test_convergence_ignores_dead_instances(self):
        sys_ = _system()
        jr = sys_.junction("x::junction")
        jr.table.enqueue_pending([Update(key="P", value=True, src="ghost")])
        sys_.crash_instance("x")
        assert check_invariants(sys_, {}, ("convergence",)) == []

    def test_at_most_once_flags_duplicate_applies(self):
        sys_ = _system()
        sys_.telemetry.emit("apply", "x::junction", key="P", msg_id=7)
        assert check_invariants(sys_, {}, ("at-most-once",)) == []
        sys_.telemetry.emit("apply", "x::junction", key="P", msg_id=7)
        out = check_invariants(sys_, {}, ("at-most-once",))
        assert len(out) == 1
        assert "applied 2 times" in out[0][1]

    def test_linearizable_uses_history_observation(self):
        sys_ = _system()
        good = [
            Op("SET", "k", b"1", 0.0, 1.0),
            Op("GET", "k", b"1", 2.0, 3.0),
        ]
        bad = [
            Op("SET", "k", b"1", 0.0, 1.0),
            Op("GET", "k", b"2", 2.0, 3.0),
        ]
        assert check_invariants(sys_, {"history": good}, ("linearizable",)) == []
        out = check_invariants(sys_, {"history": bad}, ("linearizable",))
        assert len(out) == 1
        # vacuous without a history
        assert check_invariants(sys_, {}, ("linearizable",)) == []


class TestLinearize:
    def test_empty_history(self):
        assert check_linearizable([]) == []

    def test_sequential_legal(self):
        h = [
            Op("SET", "k", 1, 0, 1),
            Op("GET", "k", 1, 2, 3),
            Op("SET", "k", 2, 4, 5),
            Op("GET", "k", 2, 6, 7),
        ]
        assert check_linearizable(h) == []

    def test_stale_read_illegal(self):
        h = [
            Op("SET", "k", 1, 0, 1),
            Op("SET", "k", 2, 2, 3),
            Op("GET", "k", 1, 4, 5),  # reads a value two writes back
        ]
        out = check_linearizable(h)
        assert len(out) == 1 and "'k'" in out[0]

    def test_concurrent_ops_may_reorder(self):
        # GET overlaps both SETs: reading either value is linearizable
        h = [
            Op("SET", "k", 1, 0.0, 10.0),
            Op("SET", "k", 2, 0.0, 10.0),
            Op("GET", "k", 1, 0.0, 10.0),
        ]
        assert check_linearizable(h) == []
        h2 = [op if op.kind == "SET" else Op("GET", "k", 2, 0.0, 10.0) for op in h]
        assert check_linearizable(h2) == []

    def test_initial_value_read(self):
        assert check_linearizable([Op("GET", "k", None, 0, 1)]) == []
        assert check_linearizable([Op("GET", "k", 9, 0, 1)]) != []

    def test_keys_checked_independently(self):
        h = [
            Op("SET", "a", 1, 0, 1),
            Op("GET", "b", 7, 2, 3),  # b never written: illegal
        ]
        out = check_linearizable(h)
        assert len(out) == 1 and "'b'" in out[0]

    def test_failed_ops_excluded(self):
        h = [
            Op("SET", "k", 9, 0, 1, ok=False),  # failed SET took no effect
            Op("GET", "k", None, 2, 3),
        ]
        assert check_linearizable(h) == []
