"""Exploration corpus: the racy fixture MUST fail, the shipped
architectures MUST sweep clean, and DPOR must beat naive BFS.

These are the PR-gate acceptance tests of the exploration harness:

* the known-racy fixture (two writers, one flag) yields a concrete
  divergence witness whose schedule is stable across repeated searches
  and replays byte-identically;
* DPOR-lite explores measurably fewer schedules than exhaustive BFS
  while reaching the same verdicts;
* all ten shipped architectures hold their invariants under the
  PR-gate budget.
"""

from pathlib import Path

import pytest

from repro.arch.loader import ARCHITECTURES
from repro.explore import (
    CsawScenario,
    arch_scenario,
    explore,
    replay,
    run_schedule,
    witness_race,
)
from repro.telemetry.sinks import to_jsonl

FIXTURE = Path(__file__).parent / "fixtures" / "racy_flag.csaw"


def _fixture_scenario():
    return CsawScenario(FIXTURE.read_text(), name="racy_flag", horizon=10.0)


def _flag(system):
    return system.junction("C::junction").table.values["Flag"]


class TestRacyFixture:
    def test_default_schedule_masks_the_race(self):
        """The race is invisible without exploration: the default
        (insertion-order) schedule always ends with Flag false."""
        res = run_schedule(_fixture_scenario())
        assert res.violations == []
        assert _flag(res.system) is False

    @pytest.mark.parametrize("strategy", ["bfs", "dpor"])
    def test_exploration_finds_the_divergence(self, strategy):
        w = witness_race(
            _fixture_scenario(), "C::junction", "Flag", strategy=strategy, budget=64
        )
        assert w.reproduced, f"{strategy} missed the seeded race"
        assert w.baseline is False
        assert w.divergent is True
        assert w.schedule is not None

    def test_witness_is_stable_across_runs(self):
        sc = _fixture_scenario()
        w1 = witness_race(sc, "C::junction", "Flag", strategy="dpor", budget=64)
        w2 = witness_race(sc, "C::junction", "Flag", strategy="dpor", budget=64)
        assert w1.reproduced and w2.reproduced
        assert w1.schedule.choices == w2.schedule.choices
        assert w1.schedule.schedule_id == w2.schedule.schedule_id

    def test_witness_replays_byte_identical_telemetry(self):
        sc = _fixture_scenario()
        w = witness_race(sc, "C::junction", "Flag", strategy="dpor", budget=64)
        runs = [replay(sc, w.schedule) for _ in range(2)]
        exports = [
            to_jsonl(
                r.system.telemetry.events,
                system=f"schedule:{w.schedule.schedule_id}",
            )
            for r in runs
        ]
        assert exports[0] == exports[1]
        assert all(_flag(r.system) is True for r in runs)

    def test_random_fuzzing_also_finds_it(self):
        sc = _fixture_scenario()
        found = []

        def on_run(res):
            if _flag(res.system) is True:
                found.append(res.schedule)
                return True
            return False

        explore(sc, strategy="random", budget=64, invariants=(), seed=3, on_run=on_run)
        assert found, "random fuzzing missed the race in 64 runs"
        # a fuzz-found schedule is just as replayable
        r = replay(sc, found[0])
        assert _flag(r.system) is True


class TestReductionBeatsBfs:
    def test_dpor_explores_measurably_fewer_schedules(self):
        sc = _fixture_scenario()
        bfs = explore(sc, strategy="bfs", budget=500)
        dpor = explore(sc, strategy="dpor", budget=500)
        assert bfs.exhausted and dpor.exhausted
        assert dpor.pruned > 0
        # "measurably fewer": at least half the schedules pruned away
        assert dpor.runs * 2 <= bfs.runs, (dpor.runs, bfs.runs)
        # and the reduced search reaches the same verdict
        assert bfs.ok == dpor.ok

    def test_dpor_does_not_prune_the_conflict(self):
        """The two racy deliveries write the same key — DPOR must keep
        both orders, so the witness search still succeeds."""
        w = witness_race(
            _fixture_scenario(), "C::junction", "Flag", strategy="dpor", budget=64
        )
        assert w.reproduced


class TestCleanSweep:
    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_default_schedule_holds_invariants(self, name):
        res = run_schedule(arch_scenario(name))
        assert res.violations == [], res.violations

    @pytest.mark.parametrize("name", ["caching", "remote_snapshot"])
    def test_small_exploration_budget_stays_clean(self, name):
        """PR-gate smoke: a handful of interleavings of the cheapest
        scenarios (nightly CI runs the full budget over all ten)."""
        result = explore(arch_scenario(name), strategy="dpor", budget=8)
        assert result.ok, result.violations
        assert result.runs >= 1
