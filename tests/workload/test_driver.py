"""The workload driver: adapters, open/closed loops, reports."""

import pytest

from repro.workload import ADAPTERS, WorkloadSpec, materialize, run_workload

SMALL = WorkloadSpec(seed=5, users=400, rate=25.0, duration=3.0, max_ops=50)


def test_unknown_arch_rejected():
    with pytest.raises(KeyError, match="no workload adapter"):
        run_workload(SMALL, "nope", "sim")


def test_bad_spec_rejected():
    with pytest.raises(ValueError, match="pattern"):
        WorkloadSpec(pattern="bursty")
    with pytest.raises(ValueError, match="users"):
        WorkloadSpec(users=0)
    with pytest.raises(ValueError, match="read_fraction"):
        WorkloadSpec(read_fraction=1.5)


@pytest.mark.parametrize("arch", sorted(ADAPTERS))
def test_adapter_completes_everything_on_sim(arch):
    report = run_workload(SMALL, arch, "sim")
    assert report.ops_submitted == len(materialize(SMALL))
    assert report.ops_completed == report.ops_submitted
    assert report.ops_failed == 0
    assert report.ops_dropped == 0
    assert report.ops_per_sec > 0
    assert 0 < report.p50_ms <= report.p99_ms


def test_sim_run_is_deterministic_end_to_end():
    a = run_workload(SMALL, "broker_sharded", "sim")
    b = run_workload(SMALL, "broker_sharded", "sim")
    assert a.schedule_digest == b.schedule_digest
    assert a.completion_digest == b.completion_digest
    assert a.telemetry_digest == b.telemetry_digest
    assert a.digest == b.digest


def test_closed_loop_respects_window_and_finishes():
    spec = WorkloadSpec(seed=5, users=100, mode="closed", concurrency=4,
                        duration=5.0, max_ops=30)
    report = run_workload(spec, "broker_sharded", "sim")
    assert report.ops_completed == 30
    assert report.ops_dropped == 0


def test_patterns_change_the_schedule_not_the_count_cap():
    base = dict(seed=9, users=500, rate=100.0, duration=4.0, max_ops=500)
    digests = {
        p: run_workload(WorkloadSpec(pattern=p, **base), "broker_sharded", "sim").schedule_digest
        for p in ("steady", "diurnal", "flash-crowd")
    }
    assert len(set(digests.values())) == 3


def test_flash_crowd_spikes_mid_run():
    spec = WorkloadSpec(seed=1, users=100, pattern="flash-crowd",
                        rate=100.0, duration=10.0, max_ops=2000)
    events = materialize(spec)
    in_spike = sum(1 for ev in events if 4.0 <= ev.t < 5.0)
    outside = len(events) - in_spike
    # the spike window is 10% of the duration but ~55% of the mass
    assert in_spike > outside


def test_zipf_skew_concentrates_on_hot_users():
    spec = WorkloadSpec(seed=3, users=100_000, rate=200.0, duration=10.0,
                        max_ops=2000, zipf_s=1.3)
    events = materialize(spec)
    hot = sum(1 for ev in events if ev.user < 10)
    assert hot > len(events) * 0.2


def test_report_as_dict_is_json_shaped():
    import json

    report = run_workload(SMALL, "sharding", "sim")
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["arch"] == "sharding"
    assert payload["spec"]["seed"] == 5
    assert payload["digest"] == report.digest
