"""Generator determinism (hypothesis): same seed ⇒ byte-identical
schedules, across runs and across the API/CLI entry points; zipf
frequencies monotone in rank."""

import json
from collections import Counter
from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import WorkloadSpec, ZipfSampler, materialize, schedule_digest

specs = st.builds(
    WorkloadSpec,
    seed=st.integers(0, 2**31),
    users=st.integers(1, 50_000),
    pattern=st.sampled_from(("steady", "diurnal", "flash-crowd")),
    mode=st.sampled_from(("open", "closed")),
    rate=st.floats(1.0, 500.0, allow_nan=False),
    duration=st.floats(0.5, 20.0, allow_nan=False),
    max_ops=st.integers(1, 200),
    zipf_s=st.floats(0.5, 2.0, allow_nan=False),
    read_fraction=st.floats(0.0, 1.0, allow_nan=False),
)


@settings(max_examples=25, deadline=None)
@given(specs)
def test_same_seed_byte_identical_schedule(spec):
    a = materialize(spec)
    b = materialize(spec)
    assert [ev.as_list() for ev in a] == [ev.as_list() for ev in b]
    assert schedule_digest(a) == schedule_digest(b)


@settings(max_examples=25, deadline=None)
@given(specs, st.integers(1, 2**31))
def test_different_seed_differs(spec, delta):
    import dataclasses

    other = dataclasses.replace(spec, seed=(spec.seed + delta) % 2**32)
    a, b = materialize(spec), materialize(other)
    # vacuously equal only when almost nothing is generated
    if len(a) > 3 and spec.users > 1:
        assert schedule_digest(a) != schedule_digest(b)


@settings(max_examples=25, deadline=None)
@given(specs)
def test_arrivals_sorted_within_duration(spec):
    events = materialize(spec)
    times = [ev.t for ev in events]
    if spec.mode == "closed":
        assert times == [None] * len(events)
    else:
        assert all(0.0 <= t < spec.duration for t in times)
        assert times == sorted(times)
    assert len(events) <= spec.max_ops
    assert all(0 <= ev.user < spec.users for ev in events)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 2000), st.floats(0.6, 1.8, allow_nan=False))
def test_zipf_pmf_monotone_in_rank(n, s):
    zipf = ZipfSampler(n, s)
    probs = [zipf.probability(r) for r in range(min(n, 50))]
    assert all(a > b for a, b in zip(probs, probs[1:]))
    # pmf sums to 1 over the whole population
    assert abs(sum(zipf.probability(r) for r in range(n)) - 1.0) < 1e-9


def test_zipf_sampled_frequencies_monotone():
    """With a fixed seed and plenty of draws, observed frequencies of
    the top ranks follow the rank order."""
    zipf = ZipfSampler(1000, 1.2)
    rng = Random(42)
    counts = Counter(zipf.sample(rng) for _ in range(20_000))
    top = [counts.get(r, 0) for r in range(5)]
    assert all(a >= b for a, b in zip(top, top[1:]))
    assert counts.most_common(1)[0][0] == 0


def test_million_user_population_samples_in_range():
    zipf = ZipfSampler(1_000_000, 1.1)
    rng = Random(7)
    draws = [zipf.sample(rng) for _ in range(200)]
    assert all(0 <= d < 1_000_000 for d in draws)
    assert len(set(draws)) > 50  # a million-rank zipf is not degenerate


def test_api_and_cli_entry_points_agree(capsys):
    """The CLI's digest is the library's digest: same seed, same spec,
    byte-identical schedule underneath."""
    from repro.cli import main
    from repro.workload import run_workload

    spec = WorkloadSpec(seed=11, users=300, rate=30.0, duration=2.0, max_ops=40)
    api_report = run_workload(spec, "broker_sharded", "sim")
    rc = main([
        "workload", "--arch", "broker_sharded", "--engine", "sim",
        "--seed", "11", "--users", "300", "--rate", "30.0",
        "--duration", "2.0", "--max-ops", "40", "--json",
    ])
    assert rc == 0
    cli_report = json.loads(capsys.readouterr().out)
    assert cli_report["schedule_digest"] == api_report.schedule_digest
    assert cli_report["digest"] == api_report.digest
