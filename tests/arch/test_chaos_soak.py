"""Chaos soak tests: the paper's resilience architectures under seeded
randomized fault schedules.

Acceptance (ISSUE): the fail-over and checkpointing architectures
converge under fixed-seed chaos for at least three seeds, and the runs
are deterministic (same seed, same outcome).  Sharding convergence is
covered as a property: a lossy run ends in the same shard state as a
loss-free run of the same workload.
"""

import pytest

from repro.arch.checkpointing import CheckpointedService
from repro.arch.failover import FailoverRedis
from repro.arch.sharding import ShardedRedis
from repro.redislite import Command, DirectPort, RedisServer
from repro.runtime.chaos import ChaosConfig, ChaosEngine, SoakHarness
from repro.runtime.sim import Simulator

SEEDS = (1, 2, 3)


# -- fail-over under crash storms + loss bursts ---------------------------


def _failover_soak(seed: int):
    """One seeded chaos run; returns a digest of everything observable
    so determinism can be asserted by running it twice."""
    svc = FailoverRedis(timeout=0.5, reactivate_poll=0.5, seed=seed)
    now0 = svc.system.now
    cfg = ChaosConfig(
        horizon=now0 + 12.0,
        start_after=now0 + 1.0,
        crash_storms=1,
        downtime=(0.5, 1.5),
        link_flaps=0,
        loss_bursts=2,
        burst_length=(0.5, 1.5),
        burst_loss=(0.1, 0.4),
    )
    eng = ChaosEngine(svc.system, seed=seed, config=cfg)
    eng.schedule(instances=["b1"])

    results: list = []
    for i in range(8):
        svc.sim.call_at(
            now0 + 0.5 + 1.4 * i,
            lambda i=i: svc.submit(Command("SET", f"k{i}", b"v"), results.append),
        )

    soak = SoakHarness(svc.system, check_interval=0.5)
    seq_seen = [0]

    @soak.invariant("seq_monotone")
    def _seq(sys_):
        ok = svc.front.seq >= seq_seen[0]
        seq_seen[0] = svc.front.seq
        return ok

    @soak.invariant("front_alive")
    def _front(sys_):
        return sys_.instance("f").alive

    violations = soak.run(until=cfg.horizon)

    # convergence: after the chaos horizon everything heals.  A single
    # submit can still land mid-cycle of the Fig. 8 reactivate loop
    # (idle back-ends deactivate and re-register), so the client
    # retries on failure — the architecture reports the failure rather
    # than wedging, and a retry soon succeeds.
    svc.system.run_until(cfg.horizon + 3.0)
    final: list = []

    def attempt():
        def done(reply):
            final.append(reply.ok)
            if not reply.ok and len(final) < 6:
                svc.sim.call_after(0.7, attempt)

        svc.submit(Command("SET", "final", b"v"), done)

    attempt()
    svc.system.run_until(svc.system.now + 15.0)
    return {
        "violations": [(v.time, v.name) for v in violations],
        "schedule": eng.events,
        "oks": [r.ok for r in results],
        "seq": svc.front.seq,
        "final_oks": final,
        "registered": svc.registered_backends(),
        "alive": [svc.system.instance(b).alive for b in ("b1", "b2")],
        "retransmits": svc.system.network.stats["retransmits"],
        "jsonl": svc.system.telemetry.export("jsonl"),
    }


class TestFailoverSoak:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_converges_under_chaos(self, seed):
        d = _failover_soak(seed)
        assert d["violations"] == []
        assert d["final_oks"][-1] is True
        assert d["alive"] == [True, True]
        # at least one in-chaos request completed end to end
        assert any(d["oks"])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_is_deterministic(self, seed):
        assert _failover_soak(seed) == _failover_soak(seed)


class TestTraceExportDeterminism:
    """Same seed, same trace — to the byte.  Every attribute of every
    telemetry event is derived from simulated time and seeded RNG
    draws, so the JSONL export is a reproducible artifact."""

    def test_jsonl_export_byte_identical_across_runs(self):
        a = _failover_soak(1)["jsonl"].encode()
        b = _failover_soak(1)["jsonl"].encode()
        assert a == b
        assert len(a) > 10_000  # a chaos soak is not a trivial trace

    def test_different_seeds_trace_differently(self):
        assert _failover_soak(1)["jsonl"] != _failover_soak(2)["jsonl"]


# -- checkpointing under link flaps + duplication -------------------------


def _checkpoint_soak(seed: int):
    sim = Simulator()
    server = RedisServer()
    ref: dict = {}
    svc = CheckpointedService(
        server, stall=lambda d: ref["p"].stall(d), sim=sim, seed=seed
    )
    ref["p"] = DirectPort(sim, server)
    now0 = svc.system.now
    cfg = ChaosConfig(
        horizon=now0 + 10.0,
        start_after=now0 + 0.5,
        crash_storms=0,
        link_flaps=1,
        flap_window=(1.0, 2.5),
        flap_period=0.4,
        loss_bursts=2,
        burst_length=(0.5, 1.5),
        burst_loss=(0.2, 0.5),
        duplication=0.3,
    )
    eng = ChaosEngine(svc.system, seed=seed, config=cfg)
    eng.schedule(links=[("Act", "Aud")])

    # writes trickle in while checkpoints are scheduled through chaos
    for i in range(20):
        sim.call_at(now0 + 0.3 * i, lambda i=i: server.execute(Command("SET", f"k{i}", b"v")))
    svc.schedule_checkpoints(interval=1.0, until=cfg.horizon, first=now0 + 1.0)

    soak = SoakHarness(svc.system, check_interval=0.5)
    # dedup keeps stored snapshots from outrunning taken checkpoints
    # even with the duplication knob on
    soak.invariant("dedup_bounds_stores", lambda s: svc.aud.snapshots_stored <= svc.checkpoints)
    violations = soak.run(until=cfg.horizon)

    # crash after the chaos horizon; recovery restores the last snapshot
    svc.system.run_until(cfg.horizon + 1.0)
    server.execute(Command("SET", "late", b"v"))
    svc.crash()
    svc.system.run_until(svc.system.now + 0.5)
    svc.recover()
    svc.system.run_until(svc.system.now + 5.0)
    return {
        "violations": [(v.time, v.name) for v in violations],
        "schedule": eng.events,
        "checkpoints": svc.checkpoints,
        "stored": svc.aud.snapshots_stored,
        "restores": svc.restores,
        "keys": sorted(server.store.keys()),
        "snap_keys": sorted(svc.aud.last_snapshot["store"]["entries"]),
        "dup_delivered": svc.system.network.stats["duplicated"],
        "dedup_suppressed": svc.system.network.stats["dedup_suppressed"],
    }


class TestCheckpointingSoak:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovers_last_snapshot_under_chaos(self, seed):
        d = _checkpoint_soak(seed)
        assert d["violations"] == []
        assert d["restores"] == 1
        assert d["stored"] >= 1
        assert d["stored"] <= d["checkpoints"]
        # recovery rewinds exactly to the last stored snapshot: the
        # post-checkpoint write is gone, the snapshot keys are back
        assert d["keys"] == d["snap_keys"]
        assert "late" not in d["keys"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_is_deterministic(self, seed):
        assert _checkpoint_soak(seed) == _checkpoint_soak(seed)


# -- sharding converges to the loss-free state under loss -----------------


def _sharded_run(seed: int, drop: float):
    svc = ShardedRedis(n_shards=3, seed=seed)
    svc.system.network.drop_probability = drop
    replies: list = []
    for i in range(15):
        svc.submit(Command("SET", f"key-{i}", b"v"), replies.append)
        svc.system.run_until(svc.system.now + 2.0)
    return [r.ok for r in replies], svc.shard_sizes()


class TestShardingSoak:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lossy_run_matches_clean_run(self, seed):
        clean_oks, clean_sizes = _sharded_run(seed, drop=0.0)
        lossy_oks, lossy_sizes = _sharded_run(seed, drop=0.2)
        assert clean_oks == [True] * 15
        assert lossy_oks == clean_oks
        assert lossy_sizes == clean_sizes
