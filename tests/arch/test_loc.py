"""Table 2 LoC accounting tests."""

from repro.arch.loc import (
    count_loc_text,
    dsl_loc,
    serde_generated_loc,
    table2,
)


class TestCounting:
    def test_blank_and_comment_lines_skipped(self):
        text = "# comment\n\ncode line\n  # indented comment\nanother\n"
        assert count_loc_text(text) == 2

    def test_dsl_loc_positive(self):
        assert dsl_loc("remote_snapshot") > 10

    def test_sharding_expands_placeholders(self):
        assert dsl_loc("sharding", n_backends=8) >= dsl_loc("sharding", n_backends=2)


class TestTable2:
    def test_rows_present(self):
        rows = {r.feature: r for r in table2()}
        assert set(rows) == {"Checkpointing", "Sharding", "Caching"}

    def test_dsl_much_smaller_than_direct(self):
        """The paper's headline: DSL effort is a fraction of direct
        re-architecting (Table 2: e.g. 79+7 vs 332 for checkpointing)."""
        for row in table2():
            assert row.dsl_loc < row.direct_loc / 2

    def test_caching_has_no_suricata_arm(self):
        row = next(r for r in table2() if r.feature == "Caching")
        assert row.suricata_binding_loc is None

    def test_reuse_across_substrates(self):
        """The same DSL text serves both Redis and Suricata — the cost
        of the second application is only its binding code."""
        row = next(r for r in table2() if r.feature == "Sharding")
        assert row.suricata_binding_loc is not None
        assert row.dsl_loc < row.direct_loc


class TestSerdeBenefit:
    def test_generated_loc_reported(self):
        loc = serde_generated_loc()
        assert loc["redis_kv"] > 0
        assert loc["suricata_packet"] > loc["redis_kv"]
