"""First-response-wins fail-over (sec. 7.3 improvement (i)) tests."""

import pytest

from repro.arch.failover import FailoverRedis, FastFailoverRedis
from repro.redislite import Command


def request_latencies(svc, n=8, op="SET"):
    lats = []
    for i in range(n):
        t0 = svc.system.now
        svc.submit(
            Command(op, f"k{i}", b"v"),
            lambda r, s=t0: lats.append((svc.system.now - s, r.ok)),
        )
        svc.system.run_until(svc.system.now + 2.0)
    return lats


class TestFastFailover:
    def test_serves_correctly(self):
        svc = FastFailoverRedis(timeout=0.5)
        assert svc.registered_backends() == ["b1", "b2"]
        lats = request_latencies(svc, 5)
        assert all(ok for _l, ok in lats)
        assert svc.system.failures == []

    def test_both_replicas_stay_warm(self):
        svc = FastFailoverRedis(timeout=0.5)
        request_latencies(svc, 5)
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.backend_app(0).executed == 5
        assert svc.backend_app(1).executed == 5

    def test_faster_than_conservative_with_slow_replica(self):
        """The headline: a single slow replica no longer sets the
        response time."""
        slow = (1, 0.05)  # replica b2 adds 50 ms per request
        cons = FailoverRedis(timeout=0.5, slow_backend=slow)
        fast = FastFailoverRedis(timeout=0.5, slow_backend=slow)
        m_cons = sum(l for l, _ in request_latencies(cons)) / 8
        m_fast = sum(l for l, _ in request_latencies(fast)) / 8
        assert m_fast < m_cons / 5
        assert m_cons > 0.05  # conservative pays the straggler
        assert cons.system.failures == [] and fast.system.failures == []

    def test_survives_backend_crash(self):
        svc = FastFailoverRedis(timeout=0.5)
        svc.fault_plan().crash("b1")
        lats = request_latencies(svc, 3)
        assert all(ok for _l, ok in lats)
        assert svc.system.failures == []

    def test_sequence_numbers_advance(self):
        svc = FastFailoverRedis(timeout=0.5)
        request_latencies(svc, 4)
        assert svc.front.seq == 4

    def test_stragglers_do_not_corrupt_next_request(self):
        """With one very slow replica, request k's straggler reply must
        not be consumed as request k+1's answer."""
        svc = FastFailoverRedis(timeout=1.0, slow_backend=(1, 0.2))
        svc.preload([Command("SET", "a", b"va"), Command("SET", "b", b"vb")])
        got = []
        svc.submit(Command("GET", "a"), got.append)
        svc.system.run_until(svc.system.now + 0.05)  # b2's reply still pending
        svc.submit(Command("GET", "b"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].value == b"va"
        assert got[1].value == b"vb"
