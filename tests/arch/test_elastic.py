"""Elastic scale-out/in architecture tests (extension; dsl/elastic.csaw)."""

import pytest

from repro.arch.elastic import ElasticWorkers


def run_jobs(svc, n, units=2):
    done = []
    for _ in range(n):
        svc.submit_job(units, done.append)
    svc.system.run_until(svc.system.now + 10.0)
    return done


class TestRouting:
    def test_jobs_balance_over_active_workers(self):
        svc = ElasticWorkers()
        done = run_jobs(svc, 8)
        assert len(done) == 8
        assert sorted({d["worker"] for d in done}) == ["Wrk1", "Wrk2"]
        assert svc.system.failures == []

    def test_spares_not_running_initially(self):
        svc = ElasticWorkers()
        assert svc.running_workers() == ["Wrk1", "Wrk2"]
        assert not svc.system.instance("Wrk3").running


class TestScaling:
    def test_scale_out_starts_instance_via_dsl(self):
        svc = ElasticWorkers()
        ok = []
        svc.scale_out(ok.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert ok == [True]
        assert svc.system.instance("Wrk3").alive
        done = run_jobs(svc, 9)
        assert "Wrk3" in {d["worker"] for d in done}

    def test_scale_in_stops_instance_via_dsl(self):
        svc = ElasticWorkers()
        ok = []
        svc.scale_in(ok.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert ok == [True]
        assert not svc.system.instance("Wrk2").running
        done = run_jobs(svc, 4)
        assert {d["worker"] for d in done} == {"Wrk1"}

    def test_scale_out_all_then_refuse(self):
        svc = ElasticWorkers()
        for _ in range(2):
            svc.scale_out()
            svc.system.run_until(svc.system.now + 3.0)
        assert len(svc.running_workers()) == 4
        with pytest.raises(ValueError):
            svc.scale_out()

    def test_refuses_scale_below_one(self):
        svc = ElasticWorkers()
        svc.scale_in()
        svc.system.run_until(svc.system.now + 3.0)
        with pytest.raises(ValueError):
            svc.scale_in()

    def test_throughput_scales_with_workers(self):
        """More workers finish a fixed batch sooner (the point of
        scale-out)."""
        def batch_time(n_extra):
            svc = ElasticWorkers(unit_cost=5e-3)
            for _ in range(n_extra):
                svc.scale_out()
                svc.system.run_until(svc.system.now + 3.0)
            t0 = svc.system.now
            done = []
            for _ in range(40):
                svc.submit_job(4, done.append)
            svc.system.run_until(svc.system.now + 60.0)
            assert len(done) == 40
            return svc.system.now  # not meaningful; measure via latency sum

        # measure end-to-end completion by tracking the last completion time
        def batch_elapsed(n_extra):
            svc = ElasticWorkers(unit_cost=5e-3)
            for _ in range(n_extra):
                svc.scale_out()
                svc.system.run_until(svc.system.now + 3.0)
            t0 = svc.system.now
            finish = []
            remaining = [40]

            def cb(_r):
                remaining[0] -= 1
                if remaining[0] == 0:
                    finish.append(svc.system.now)

            for _ in range(40):
                svc.submit_job(4, cb)
            svc.system.run_until(svc.system.now + 60.0)
            return finish[0] - t0

        two = batch_elapsed(0)
        four = batch_elapsed(2)
        assert four < two * 0.75
