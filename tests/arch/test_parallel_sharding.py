"""Parallel sharding (sec. 7.1, Fig. 6) and subset-iteration tests."""

import pytest

from repro.arch.sharding import ParallelShardedRedis
from repro.redislite import Command


class TestSubsetIteration:
    """The DSL machinery Fig. 6 needs: host-populated subsets iterated
    by unrolling over the parent set with membership guards."""

    def _system(self):
        from repro.core.compiler import compile_program
        from repro.runtime.system import System

        src = """
        instance_types { T }
        instances { x: T }
        def main() = start x()
        def T::j() =
          | set Backs = {a, b, c}
          | subset tgt of Backs
          | for e in Backs init prop !Seen[e]
          host Choose {tgt};
          for e in tgt ; assert[] Seen[e]
        """
        return System(compile_program(src))

    def test_only_members_visited(self):
        sys_ = self._system()
        sys_.bind_host("T", "Choose", lambda ctx: ctx.set("tgt", ["a", "c"]))
        sys_.start()
        sys_.run_until(1.0)
        assert sys_.read_state("x::j", "Seen[a]") is True
        assert sys_.read_state("x::j", "Seen[b]") is False
        assert sys_.read_state("x::j", "Seen[c]") is True

    def test_empty_subset_visits_nothing(self):
        sys_ = self._system()
        sys_.bind_host("T", "Choose", lambda ctx: ctx.set("tgt", []))
        sys_.start()
        sys_.run_until(1.0)
        for e in "abc":
            assert sys_.read_state("x::j", f"Seen[{e}]") is False

    def test_non_member_rejected(self):
        sys_ = self._system()
        sys_.bind_host("T", "Choose", lambda ctx: ctx.set("tgt", ["zzz"]))
        sys_.start()
        sys_.run_until(1.0)
        assert any("HostError" == type(e).__name__ for _t, _n, e in sys_.failures)


class TestParallelShardedRedis:
    def test_all_replicas_execute(self):
        svc = ParallelShardedRedis(n_backends=3, timeout=0.5)
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].ok
        assert [svc.backend_app(i).executed for i in range(3)] == [1, 1, 1]
        assert svc.system.failures == []

    def test_replica_subset(self):
        svc = ParallelShardedRedis(n_backends=3, replicas=2, timeout=0.5)
        got = []
        svc.preload([Command("SET", "k", b"v")])
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].value == b"v"
        assert [svc.backend_app(i).executed for i in range(3)] == [1, 1, 0]

    def test_crash_deregisters_and_survives(self):
        svc = ParallelShardedRedis(n_backends=3, timeout=0.5)
        svc.preload([Command("SET", "k", b"v")])
        svc.system.crash_instance("Bck2")
        got = []
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 5.0)
        assert got[0].ok and got[0].value == b"v"
        assert svc.active_backends() == ["Bck1", "Bck3"]
        assert svc.system.failures == []

    def test_deregistered_backend_skipped_next_time(self):
        svc = ParallelShardedRedis(n_backends=2, timeout=0.3)
        svc.preload([Command("SET", "k", b"v")])
        svc.system.crash_instance("Bck1")
        got = []
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        t_first = svc.system.now
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        # the second request does not pay Bck1's timeout again
        assert got[1].ok
        assert svc.backend_app(1).executed == 2

    def test_all_backends_down_complains(self):
        svc = ParallelShardedRedis(n_backends=2, timeout=0.3)
        svc.system.crash_instance("Bck1")
        svc.system.crash_instance("Bck2")
        got = []
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 5.0)
        assert got and not got[0].ok
