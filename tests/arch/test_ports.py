"""FrontApp / BackApp plumbing tests."""

from repro.arch.ports import BackApp, FrontApp
from repro.core.compiler import compile_program
from repro.runtime.system import System

SRC = """
instance_types { T }
instances { x: T }
def main() = start x()
def T::j() = | init prop !Req
  skip
"""


def front():
    sys_ = System(compile_program(SRC))
    sys_.start()
    return FrontApp(sys_, "x::j"), sys_


class TestFrontApp:
    def test_submit_asserts_req(self):
        app, sys_ = front()
        app.submit({"op": "GET"}, lambda r: None)
        sys_.run_until(0.1)
        assert sys_.read_state("x::j", "Req") is True

    def test_begin_next_pops_fifo(self):
        app, sys_ = front()
        app.submit({"id": 1}, lambda r: None)
        app.submit({"id": 2}, lambda r: None)
        assert app.begin_next() == {"id": 1}
        app.current = None  # pretend completed
        assert app.begin_next() == {"id": 2}

    def test_begin_next_empty(self):
        app, _ = front()
        assert app.begin_next() is None

    def test_respond_completes_with_reply(self):
        app, _ = front()
        got = []
        app.submit({"id": 1}, got.append)
        app.begin_next()
        app.set_reply({"ok": True})
        app.respond()
        assert got == [{"ok": True}]
        assert app.completed == 1
        assert app.current is None

    def test_fail_current(self):
        app, _ = front()
        got = []
        app.submit({"id": 1}, got.append)
        app.begin_next()
        app.fail_current()
        assert got == [None]
        assert app.failed == 1

    def test_abandoned_request_failed_on_next_begin(self):
        app, _ = front()
        got = []
        app.submit({"id": 1}, got.append)
        app.submit({"id": 2}, got.append)
        app.begin_next()
        # junction died before Respond; next scheduling cleans up
        nxt = app.begin_next()
        assert nxt == {"id": 2}
        assert got == [None]
        assert app.failed == 1

    def test_rearm_when_queue_nonempty(self):
        app, sys_ = front()
        app.submit({"id": 1}, lambda r: None)
        app.submit({"id": 2}, lambda r: None)
        sys_.run_until(0.1)
        app.begin_next()
        app.set_reply({})
        # consume the Req, then respond: a fresh Req must be asserted
        sys_.junction("x::j").table.set_local("Req", False)
        app.respond()
        sys_.run_until(0.2)
        assert sys_.read_state("x::j", "Req") is True


class TestBackApp:
    def test_receive_and_reply(self):
        app = BackApp(payload="server")
        app.receive({"op": "GET"})
        assert app.current == {"op": "GET"}
        app.set_reply({"ok": True})
        assert app.reply == {"ok": True}
        assert app.executed == 1
