"""Architecture tests over redislite: sharding, caching, loader, LoC."""

import pytest

from repro.arch.caching import CachedRedis, LruCache
from repro.arch.loader import ARCHITECTURES, backend_names, load_program, load_source
from repro.arch.sharding import (
    ShardedRedis,
    key_hash_chooser,
    object_size_chooser,
)
from repro.redislite import BenchDriver, Command, WorkloadGenerator, djb2


class TestLoader:
    @pytest.mark.parametrize("name", ARCHITECTURES)
    def test_all_architectures_compile(self, name):
        kwargs = {"n_backends": 4} if name == "sharding" else {}
        prog = load_program(name, **kwargs)
        assert prog.junctions

    def test_sharding_backend_count(self):
        prog = load_program("sharding", n_backends=3)
        assert len(prog.instance_map()) == 4  # front + 3

    def test_unknown_architecture(self):
        with pytest.raises(FileNotFoundError):
            load_source("teleportation")

    def test_n_backends_only_for_sharding(self):
        with pytest.raises(ValueError):
            load_source("caching", n_backends=2)

    def test_backend_names(self):
        assert backend_names(2) == ["Bck1", "Bck2"]


class TestChoosers:
    def test_key_hash_chooser_matches_djb2(self):
        c = key_hash_chooser(4)
        assert c({"key": "abc"}) == djb2("abc") % 4

    def test_size_chooser_classes(self):
        c = object_size_chooser(4, {"small": 100, "mid": 10_000, "big": 100_000})
        assert c({"key": "small"}) == 0
        assert c({"key": "mid"}) == 1
        assert c({"key": "big"}) == 2

    def test_size_chooser_unknown_key_uses_request_size(self):
        c = object_size_chooser(4, {})
        assert c({"key": "x", "size": 50}) == 0


class TestShardedRedis:
    def test_requests_served(self):
        svc = ShardedRedis(n_shards=2)
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        assert got[0].ok
        assert got[1].value == b"v"

    def test_sharding_is_by_key_hash(self):
        svc = ShardedRedis(n_shards=4)
        wl = WorkloadGenerator(n_keys=100, seed=8)
        svc.preload(wl.preload_commands())
        expected = [0, 0, 0, 0]
        for k in wl._keys:
            expected[djb2(k) % 4] += 1
        assert svc.shard_sizes() == expected

    def test_bench_runs_clean(self):
        svc = ShardedRedis(n_shards=4)
        wl = WorkloadGenerator(n_keys=100, seed=9)
        svc.preload(wl.preload_commands())
        res = BenchDriver(svc.sim, svc, wl, clients=4).run(1.0)
        assert res.count > 100
        assert svc.system.failures == []
        # at most `clients` requests may still be in flight at the cut
        inflight = sum(svc.shard_counts) - (res.count + svc.front.failed)
        assert 0 <= inflight <= 4

    def test_size_mode_uses_size_table(self):
        wl = WorkloadGenerator(n_keys=60, seed=10, size_class_weights=(0.6, 0.3, 0.1))
        table = {k: wl.key_size(k) for k in wl._keys}
        svc = ShardedRedis(n_shards=4, mode="size", size_table=table)
        svc.preload(wl.preload_commands())
        sizes = svc.shard_sizes()
        assert sizes[3] == 0  # only 3 classes in use
        assert sizes[0] > 0

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ShardedRedis(mode="astrology")

    def test_backend_crash_fails_requests_then_recovers(self):
        svc = ShardedRedis(n_shards=2, timeout=0.3)
        wl = WorkloadGenerator(n_keys=40, seed=11)
        svc.preload(wl.preload_commands())
        # find a key on shard 0
        key0 = next(k for k in wl._keys if djb2(k) % 2 == 0)
        svc.system.crash_instance("Bck1")
        got = []
        svc.submit(Command("GET", key0), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got and not got[0].ok  # timed out, complained
        svc.system.restart_instance("Bck1")
        svc.submit(Command("GET", key0), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[-1].ok is True


class TestCachedRedis:
    def test_hit_skips_backend(self):
        svc = CachedRedis(capacity=10)
        svc.preload([Command("SET", "k", b"v")])
        got = []
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        backend_calls = svc.server.commands_executed
        svc.submit(Command("GET", "k"), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        assert got[1].value == b"v"
        assert svc.server.commands_executed == backend_calls  # served from cache
        assert svc.cache.hits == 1

    def test_set_invalidates(self):
        svc = CachedRedis(capacity=10)
        svc.preload([Command("SET", "k", b"old")])
        got = []
        svc.submit(Command("GET", "k"), got.append)       # miss, caches "old"
        svc.system.run_until(svc.system.now + 2.0)
        svc.submit(Command("SET", "k", b"new"), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        svc.submit(Command("GET", "k"), got.append)       # must not be stale
        svc.system.run_until(svc.system.now + 2.0)
        assert got[-1].value == b"new"

    def test_skewed_workload_hits(self):
        svc = CachedRedis(capacity=150)
        wl = WorkloadGenerator(n_keys=1000, get_ratio=0.9, skew=(0.1, 0.9), seed=12)
        svc.preload(wl.preload_commands())
        res = BenchDriver(svc.sim, svc, wl, clients=4).run(1.0)
        assert res.count > 100
        hit_rate = svc.cache.hits / max(1, svc.cache.hits + svc.cache.misses)
        assert hit_rate > 0.5
        assert svc.system.failures == []


class TestLruCache:
    def test_eviction_order(self):
        c = LruCache(2)
        c.put("a", b"1")
        c.put("b", b"2")
        c.get("a")          # refresh a
        c.put("c", b"3")    # evicts b
        assert c.get("b") is None
        assert c.get("a") == b"1"
        assert len(c) == 2

    def test_invalidate(self):
        c = LruCache(2)
        c.put("a", b"1")
        c.invalidate("a")
        assert c.get("a") is None

    def test_counters(self):
        c = LruCache(2)
        c.put("a", b"1")
        c.get("a")
        c.get("z")
        c.get("z")
        assert (c.hits, c.misses) == (1, 2)
