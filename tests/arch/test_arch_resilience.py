"""Architecture tests: checkpointing, snapshots, fail-over, watched."""

import pytest

from repro.arch.checkpointing import CheckpointedService
from repro.arch.failover import FailoverRedis, FailoverSuricata
from repro.arch.snapshot import RemoteAuditor
from repro.arch.watched import WatchedRedis
from repro.redislite import Command, DirectPort, RedisServer, WorkloadGenerator
from repro.runtime.sim import Simulator


class TestCheckpointing:
    def _service(self):
        sim = Simulator()
        server = RedisServer()
        ref = {}
        svc = CheckpointedService(server, stall=lambda d: ref["p"].stall(d), sim=sim)
        ref["p"] = DirectPort(sim, server)
        return svc, server, ref["p"]

    def test_snapshot_stored_remotely(self):
        svc, server, port = self._service()
        server.execute(Command("SET", "k", b"v"))
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.checkpoints == 1
        assert svc.aud.snapshots_stored == 1
        assert "k" in svc.aud.last_snapshot["store"]["entries"]

    def test_crash_recovery_restores_state(self):
        svc, server, port = self._service()
        for i in range(10):
            server.execute(Command("SET", f"k{i}", b"v"))
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 2.0)
        # writes after the checkpoint are lost on recovery
        server.execute(Command("SET", "late", b"v"))
        svc.crash()
        svc.system.run_until(svc.system.now + 0.5)
        svc.recover()
        svc.system.run_until(svc.system.now + 3.0)
        assert svc.restores == 1
        assert server.store.exists("k3")
        assert not server.store.exists("late")

    def test_scheduled_checkpoints(self):
        svc, server, port = self._service()
        svc.schedule_checkpoints(interval=1.0, until=3.5)
        svc.system.run_until(5.0)
        assert svc.checkpoints == 3
        assert svc.checkpoint_times == pytest.approx([1.0, 2.0, 3.0])

    def test_checkpoint_stalls_service(self):
        svc, server, port = self._service()
        for i in range(5000):
            server.execute(Command("SET", f"k{i}", b"v"))
        before = port._busy_until
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 1.0)
        assert port._busy_until > before

    def test_works_for_suricata_pipeline_too(self):
        """The paper's reuse claim: the same architecture wraps the
        Suricata substrate unchanged."""
        from repro.suricatalite import Pipeline, TraceGenerator

        sim = Simulator()
        pipeline = Pipeline()
        stalls = []
        svc = CheckpointedService(pipeline, stall=stalls.append, sim=sim)
        for pkt in TraceGenerator(seed=1).packets(200):
            pipeline.process(pkt)
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.aud.snapshots_stored == 1
        flows_before = pipeline.ctx.flow_table.size()
        svc.crash()
        svc.recover()
        svc.system.run_until(svc.system.now + 3.0)
        assert pipeline.ctx.flow_table.size() == flows_before
        assert stalls  # the freeze was charged


class TestRemoteAuditor:
    def test_audit_log_receives_snapshots(self):
        aud = RemoteAuditor(placement="same-vm")
        released = []
        hook = aud.audit_hook()
        hook({"done": 1, "total": 10}, lambda: released.append(1))
        aud.system.run_until(aud.system.now + 2.0)
        assert released == [1]
        assert aud.audit_log == [{"done": 1, "total": 10}]

    def test_cross_vm_slower_than_same_vm(self):
        t = {}
        for placement in ("same-vm", "cross-vm"):
            aud = RemoteAuditor(placement=placement)
            done = []
            aud.audit_hook()({"x": 1}, lambda: done.append(aud.system.now))
            aud.system.run_until(aud.system.now + 2.0)
            t[placement] = done[0]
        assert t["cross-vm"] > t["same-vm"]

    def test_audit_failure_complains_and_releases(self):
        aud = RemoteAuditor(placement="cross-vm", timeout=0.2)
        aud.system.crash_instance("Aud")
        released = []
        aud.audit_hook()({"x": 1}, lambda: released.append(1))
        aud.system.run_until(aud.system.now + 3.0)
        assert released == [1]
        assert aud.act.complaints == 1

    def test_bad_placement(self):
        with pytest.raises(ValueError):
            RemoteAuditor(placement="moon")


class TestFailover:
    def test_both_backends_register(self):
        svc = FailoverRedis(timeout=0.5)
        assert svc.registered_backends() == ["b1", "b2"]
        assert svc.system.failures == []

    def test_requests_hit_both_replicas(self):
        svc = FailoverRedis(timeout=0.5)
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].ok
        assert svc.backend_app(0).executed == 1
        assert svc.backend_app(1).executed == 1

    def test_survives_backend_crash(self):
        svc = FailoverRedis(timeout=0.5)
        svc.fault_plan().crash("b1")
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 10.0)
        assert got and got[0].ok
        assert svc.registered_backends() == ["b2"]

    def test_crashed_backend_reregisters_after_restart(self):
        svc = FailoverRedis(timeout=0.5, reactivate_poll=0.5)
        svc.fault_plan().crash("b1")
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 10.0)
        svc.system.restart_instance("b1")
        svc.system.run_until(svc.system.now + 15.0)
        assert svc.registered_backends() == ["b1", "b2"]

    def test_canonical_state_advances(self):
        svc = FailoverRedis(timeout=0.5)
        got = []
        for i in range(3):
            svc.submit(Command("SET", f"k{i}", b"v"), got.append)
        svc.system.run_until(svc.system.now + 6.0)
        assert svc.front.seq == 3

    def test_suricata_reuse(self):
        svc = FailoverSuricata(timeout=0.5)
        from repro.suricatalite import TraceGenerator

        pkts = list(TraceGenerator(seed=2).packets(100))
        got = []
        svc.submit_packets(pkts, got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0]["processed"] == 100
        assert svc.backend_app(0).payload.packets_processed == 100
        assert svc.backend_app(1).payload.packets_processed == 100


class TestWatched:
    def test_serves_with_both_up(self):
        svc = WatchedRedis(timeout=0.3)
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].ok
        assert svc.focus() == "both"

    def test_watchdog_flips_focus_on_primary_crash(self):
        svc = WatchedRedis(timeout=0.3, watch_interval=0.25)
        svc.fault_plan().crash("o")
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.focus() == "s"
        got = []
        svc.submit(Command("SET", "k", b"v"), got.append)
        svc.system.run_until(svc.system.now + 3.0)
        assert got[0].ok

    def test_watchdog_flips_to_primary_on_spare_crash(self):
        svc = WatchedRedis(timeout=0.3, watch_interval=0.25)
        svc.fault_plan().crash("s")
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.focus() == "o"

    def test_unrecoverable_complains(self):
        svc = WatchedRedis(timeout=0.3, watch_interval=0.25)
        svc.fault_plan().crash("o")
        svc.fault_plan().crash("s")
        svc.system.run_until(svc.system.now + 2.0)
        assert svc.watch_complaints >= 1
