"""Live-migration architecture tests (extension; dsl/migration.csaw)."""

import pytest

from repro.arch.migration import MigratableRedis
from repro.redislite import BenchDriver, Command, WorkloadGenerator


def make(n_keys=100, **kw):
    svc = MigratableRedis(**kw)
    wl = WorkloadGenerator(n_keys=n_keys, seed=51)
    svc.preload(wl.preload_commands())
    return svc, wl


class TestRouting:
    def test_serves_from_active_node(self):
        svc, wl = make()
        got = []
        svc.submit(Command("GET", wl._keys[0]), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        assert got[0].ok and got[0].value is not None
        assert svc.system.instance("NodeA").app.executed == 1
        assert svc.system.instance("NodeB").app.executed == 0

    def test_bench_runs_clean(self):
        svc, wl = make(n_keys=200)
        res = BenchDriver(svc.sim, svc, wl, clients=4).run(1.0)
        assert res.count > 100
        assert svc.system.failures == []


class TestMigration:
    def test_dataset_moves_and_routing_flips(self):
        svc, wl = make(n_keys=150)
        result = []
        svc.migrate("NodeB", result.append)
        svc.system.run_until(svc.system.now + 5.0)
        assert result == [True]
        assert svc.active == "NodeB"
        assert svc.node_server("NodeB").store.size() == 150
        got = []
        svc.submit(Command("GET", wl._keys[3]), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        assert got[0].value is not None
        assert svc.system.instance("NodeB").app.executed == 1
        assert svc.system.failures == []

    def test_migrate_back_and_forth(self):
        svc, wl = make(n_keys=60)
        done = []
        svc.migrate("NodeB", done.append)
        svc.system.run_until(svc.system.now + 5.0)
        svc.migrate("NodeA", done.append)
        svc.system.run_until(svc.system.now + 5.0)
        assert done == [True, True]
        assert svc.active == "NodeA"
        assert svc.front.migrations == 2

    def test_requests_flow_during_migration(self):
        svc, wl = make(n_keys=2000)
        driver = BenchDriver(svc.sim, svc, wl, clients=4)
        migrated = []
        svc.sim.call_at(0.5, lambda: svc.migrate("NodeB", migrated.append))
        res = driver.run(2.0)
        assert migrated == [True]
        assert res.count > 200
        # requests were answered by both nodes across the switch
        assert svc.system.instance("NodeA").app.executed > 0
        assert svc.system.instance("NodeB").app.executed > 0
        assert svc.system.failures == []

    def test_migrate_to_active_rejected(self):
        svc, _ = make()
        with pytest.raises(ValueError):
            svc.migrate("NodeA")

    def test_unknown_node_rejected(self):
        svc, _ = make()
        with pytest.raises(ValueError):
            svc.migrate("NodeZ")

    def test_failed_migration_keeps_old_routing(self):
        svc, wl = make(timeout=0.3)
        svc.system.crash_instance("NodeB")
        result = []
        svc.migrate("NodeB", result.append)
        svc.system.run_until(svc.system.now + 5.0)
        assert result == [False]
        assert svc.active == "NodeA"
        got = []
        svc.submit(Command("GET", wl._keys[0]), got.append)
        svc.system.run_until(svc.system.now + 2.0)
        assert got[0].ok
